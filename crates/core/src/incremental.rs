//! Incremental re-embedding: resident embeddings that absorb deltas by
//! re-running only the dirty region of the recursion.
//!
//! A [`ResidentEmbedding`] keeps everything one level-synchronous run
//! produced: the global BFS tree, the *retained* recursion arena (every
//! subproblem's partition, solved part, metrics, and merge statistics —
//! see [`RecNode`]), the rotation system, and the certification
//! artifacts, plus a warm [`KernelCache`] so successive kernel runs reuse
//! their mailbox arenas. [`ResidentEmbedding::reembed`] then brings the
//! resident state to a mutated graph at a fraction of a full run's cost:
//!
//! 1. **Planning** (`crate::planner`): the delta is classified into a
//!    typed [`DeltaClass`] and the resident tree is repaired host-side —
//!    spliced, grafted, or pruned via the `tree.rs` machinery — under the
//!    *sticky-root* model: the tree stays rooted where the last full
//!    build elected, and the planner maintains it as exactly the BFS tree
//!    the deterministic kernel would build from that root (min-id parent
//!    rule, sorted children). The staged repair must equal a from-scratch
//!    host model of the mutated graph field-for-field before anything
//!    else runs; a miss falls back to the full path as
//!    [`FullCause::PlanRejected`]. No distributed setup re-runs on the
//!    incremental path at all.
//! 2. **Dirty-region rebuild**: the recursion arena is rebuilt top-down
//!    over the repaired tree. Every subproblem is the full subtree of its
//!    root, so a node whose subtree contains neither a tree-record change
//!    nor a delta endpoint is *adopted* wholesale — partition, part,
//!    metrics, merge statistics, and its entire sub-arena (renumbered on
//!    departures). A node whose subtree is only edge-dirty reuses its
//!    retained partition (partition content is a pure function of the
//!    tree) and re-runs just its merge; a tree-dirty node re-runs its
//!    partition through [`ExecutionContext`] too. The dirty nodes form
//!    the root-to-repair-site chains — `O(log n)` of the arena per delta.
//! 3. **Epilogue**: the centralized fidelity stand-in
//!    ([`planar_lib::embed`]) produces the rotation exactly as the full
//!    driver does (see the fidelity note in `driver.rs`), and
//!    certification splices the resident certificate set against a
//!    scratch build ([`planar_cert::splice_certificates`], shift-aware on
//!    departures) before one distributed re-verification — so only
//!    changed certificates need re-distribution.
//!
//! **Bit-identity contract**: the rotation system, the certification
//! verdict, and the planarity outcome of `reembed` are bit-identical to a
//! full re-embedding of the mutated graph ([`embed_distributed`] with the
//! same configuration). The rotation comes from the same centralized
//! epilogue on the same graph; the planarity outcome agrees because the
//! density guard runs in both paths and the epilogue decides the rest;
//! the certification verdict agrees because a spliced certificate set is
//! element-wise equal to the scratch set. The sticky root cannot leak
//! into any of these: partitions and merges are valid for a BFS tree
//! from *any* fixed root, and all contract outputs are root-independent.
//! What incremental runs save is kernel simulation — setup and every
//! clean subtree — and metrics/round tallies are intentionally not part
//! of the contract.
//!
//! Deltas the planner cannot scope (classified [`DeltaClass::Fallback`])
//! take a full retained re-run, which also re-elects the root (the sticky
//! root is always the last full build's). A rejected delta (the mutated
//! graph is non-planar) leaves the resident state *and* the resident
//! graph untouched: all recomputation is staged in an overlay and
//! committed only after the epilogue accepts.
//!
//! [`embed_distributed`]: crate::embed_distributed

use std::collections::HashMap;

use congest_sim::{KernelCache, Metrics, Phase};
use planar_cert::{
    build_certificates, splice_certificates, splice_certificates_shifted, SpliceStats,
};
use planar_graph::{Graph, RotationSystem, VertexId};

use crate::certify::{certify_embedding, certify_with_certificates, Certification};
use crate::driver::{run_recursion_retained, validate_partition, RecNode};
use crate::error::EmbedError;
use crate::exec::ExecutionContext;
use crate::merge::merge_parts_ctx;
use crate::partition::{partition_subtree_ctx, Partition, SubProblem};
use crate::parts::PartState;
use crate::planner::{self, DeltaClass, PlanAction, RepairPlan};
use crate::tree::GlobalTree;
use crate::Scheduler;
use crate::{EmbedderConfig, Kernel};

/// Why a re-embedding took the full (non-incremental) path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FullCause {
    /// The first build of the resident embedding — nothing to reuse yet.
    InitialBuild,
    /// A vertex-set delta outside the planner's repairable shapes: a
    /// non-appended arrival, an anchor spread wider than two levels, a
    /// departure of the root or of an internal tree vertex, or a
    /// departure without the explicit hint
    /// ([`ResidentEmbedding::reembed_departure`]).
    VertexSetChanged,
    /// An edge delta whose BFS repair would cascade: a tree-edge deletion
    /// with no alternative parent, or an insert that shortens distances.
    TreeChanged,
    /// The staged repair failed its oracle-grade verification against the
    /// from-scratch host model. This never fires in a correct build; the
    /// DST churn oracle raises a violation when it does.
    PlanRejected,
}

/// Which path one [`ResidentEmbedding::reembed`] call took, with its
/// reuse accounting.
#[derive(Clone, Debug, PartialEq)]
pub enum ReembedPath {
    /// A full retained re-run (setup, all partitions, all merges).
    Full {
        /// Why the incremental analysis did not apply.
        cause: FullCause,
    },
    /// The incremental path: no distributed setup, adopted arena
    /// subtrees, and only the dirty chains re-run.
    Incremental {
        /// The class the delta was planned (and executed) as.
        class: DeltaClass,
        /// Number of distinct dirty vertices (tree-record changes plus
        /// delta endpoints) the planner scoped the rebuild to.
        dirty_region: usize,
        /// Partitions re-run because their subtree's tree records
        /// changed.
        recomputed_partitions: usize,
        /// Retained partitions reused (adopted or re-validated against an
        /// unchanged subtree).
        reused_partitions: usize,
        /// Merges re-run because their subtree contains a dirty vertex.
        recomputed_merges: usize,
        /// Internal nodes whose retained merge result was adopted.
        reused_merges: usize,
        /// Certificate splice accounting, when certification is on.
        splice: Option<SpliceStats>,
    },
}

/// The outcome report of one build or re-embed.
#[derive(Clone, Debug, PartialEq)]
pub struct ReembedReport {
    /// Which path ran and what it reused.
    pub path: ReembedPath,
    /// The class the planner predicted for the delta before executing
    /// anything ([`DeltaClass::Fallback`] for initial builds). Equals
    /// [`ReembedReport::taken`] unless the staged repair was rejected —
    /// the DST churn oracle flags any disagreement.
    pub planned: DeltaClass,
    /// Sequential kernel rounds the call consumed (re-run partitions and
    /// merges plus certification for incremental; the full tally
    /// otherwise).
    pub rounds: usize,
}

impl ReembedReport {
    /// `true` if this report came from the incremental path.
    pub fn is_incremental(&self) -> bool {
        matches!(self.path, ReembedPath::Incremental { .. })
    }

    /// The class the call actually executed: the planned class on the
    /// incremental path, [`DeltaClass::Fallback`] on the full path.
    pub fn taken(&self) -> DeltaClass {
        match &self.path {
            ReembedPath::Incremental { class, .. } => *class,
            ReembedPath::Full { .. } => DeltaClass::Fallback,
        }
    }

    /// Dirty-region size of the plan (0 on the full path).
    pub fn dirty_region(&self) -> usize {
        match &self.path {
            ReembedPath::Incremental { dirty_region, .. } => *dirty_region,
            ReembedPath::Full { .. } => 0,
        }
    }
}

/// Reuse accounting of one dirty-region rebuild.
#[derive(Clone, Copy, Debug, Default)]
struct ReuseCounts {
    recomputed_partitions: usize,
    reused_partitions: usize,
    recomputed_merges: usize,
    reused_merges: usize,
}

/// Staged results of the incremental rebuild, committed only after the
/// epilogue accepts the mutated graph.
struct Overlay {
    nodes: Vec<RecNode>,
    rotation: RotationSystem,
    certification: Option<Certification>,
    splice: Option<SpliceStats>,
    counts: ReuseCounts,
}

/// A long-lived embedding of one graph, retaining every artifact needed
/// to absorb deltas incrementally. See the module docs for the reuse
/// structure and the bit-identity contract.
pub struct ResidentEmbedding {
    graph: Graph,
    cfg: EmbedderConfig,
    tree: GlobalTree,
    nodes: Vec<RecNode>,
    rotation: RotationSystem,
    certification: Option<Certification>,
    cache: Option<KernelCache>,
}

impl std::fmt::Debug for ResidentEmbedding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResidentEmbedding")
            .field("vertices", &self.graph.vertex_count())
            .field("edges", &self.graph.edge_count())
            .field("arena_nodes", &self.nodes.len())
            .field("certified", &self.certification.is_some())
            .finish()
    }
}

impl ResidentEmbedding {
    /// Builds the resident embedding of `graph` — a full level-synchronous
    /// run with the recursion arena retained.
    ///
    /// The configuration is normalized to the resident contract: the
    /// scheduler is forced to [`Scheduler::LevelSync`] (the arena *is*
    /// that recursion) and fault plans are rejected — a resident
    /// embedding models a long-lived service tenant, not a chaos run.
    ///
    /// # Errors
    ///
    /// As [`embed_distributed`](crate::embed_distributed) on `graph`,
    /// plus [`EmbedError::Internal`] for a faulted configuration.
    pub fn build(graph: Graph, cfg: &EmbedderConfig) -> Result<(Self, ReembedReport), EmbedError> {
        if !cfg.sim.faults.is_empty() {
            return Err(EmbedError::Internal(
                "resident embeddings require a fault-free configuration".into(),
            ));
        }
        let mut cfg = cfg.clone();
        cfg.scheduler = Scheduler::LevelSync;
        let (tree, nodes, rotation, certification, rounds, cache) =
            full_pass(&graph, &cfg, KernelCache::new()).map_err(|(e, _)| e)?;
        let resident = ResidentEmbedding {
            graph,
            cfg,
            tree,
            nodes,
            rotation,
            certification,
            cache: Some(cache),
        };
        let report = ReembedReport {
            path: ReembedPath::Full {
                cause: FullCause::InitialBuild,
            },
            planned: DeltaClass::Fallback,
            rounds,
        };
        Ok((resident, report))
    }

    /// The resident graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The resident rotation system.
    pub fn rotation(&self) -> &RotationSystem {
        &self.rotation
    }

    /// The resident certification artifacts (present iff the
    /// configuration certifies).
    pub fn certification(&self) -> Option<&Certification> {
        self.certification.as_ref()
    }

    /// `true` if `{u, v}` is an edge of the resident BFS tree. Deleting
    /// a *non*-tree edge preserves every BFS distance and parent choice,
    /// so such deltas are guaranteed `TreePreserving` — callers
    /// (benchmarks, tests) use this to construct incremental-friendly
    /// workloads without re-deriving the driver's deterministic tree.
    pub fn is_tree_edge(&self, u: VertexId, v: VertexId) -> bool {
        let tree_parent = |x: VertexId| self.tree.parent.get(x.index()).copied().flatten();
        tree_parent(u) == Some(v) || tree_parent(v) == Some(u)
    }

    /// The configuration the resident embedding runs under.
    pub fn config(&self) -> &EmbedderConfig {
        &self.cfg
    }

    /// The kernel executing resident runs.
    pub fn kernel(&self) -> Kernel {
        self.cfg.kernel
    }

    /// Heap bytes held warm by the resident kernel cache between deltas
    /// (zero while a re-embed is in flight and the cache is loaned to the
    /// execution context). The service layer reports this per tenant.
    pub fn kernel_memory_bytes(&self) -> usize {
        self.cache.as_ref().map_or(0, |c| c.memory_bytes())
    }

    /// Re-embeds onto `new_graph` (the resident graph after one or more
    /// deltas), incrementally when the delta planner finds a local repair
    /// and by a full retained re-run otherwise (recorded in the report).
    ///
    /// Edge deltas and appended-vertex arrivals are planned from the
    /// graph diff alone; a departure needs the explicit
    /// [`reembed_departure`](Self::reembed_departure) hint (the removed
    /// id is not always recoverable from the renumbered graph) and falls
    /// back to the full path here.
    ///
    /// On error — most importantly [`EmbedError::NonPlanar`] when the
    /// delta broke planarity — the resident state is unchanged: the old
    /// graph, rotation, arena, and certificates all stay resident, so the
    /// caller can reject the delta and continue serving.
    ///
    /// # Errors
    ///
    /// As [`embed_distributed`](crate::embed_distributed) on `new_graph`.
    pub fn reembed(&mut self, new_graph: Graph) -> Result<ReembedReport, EmbedError> {
        let old_n = self.graph.vertex_count();
        let new_n = new_graph.vertex_count();
        let plan = if new_n == old_n {
            planner::plan_edge_delta(&self.graph, &self.tree, &new_graph)
        } else if new_n == old_n + 1 {
            planner::plan_arrival(&self.graph, &self.tree, &new_graph)
        } else {
            planner::DeltaPlan {
                planned: DeltaClass::Fallback,
                action: PlanAction::Full(FullCause::VertexSetChanged),
            }
        };
        self.reembed_planned(new_graph, plan)
    }

    /// [`reembed`](Self::reembed) for a node departure: `removed` is the
    /// departed vertex's id *in the resident graph* (ids above it shift
    /// down by one in `new_graph`, as [`planar_graph::Graph::remove_vertex`]
    /// compacts). Leaf departures take the incremental
    /// [`DeltaClass::VertexSetChange`] path; root or internal departures
    /// fall back.
    ///
    /// # Errors
    ///
    /// As [`reembed`](Self::reembed).
    pub fn reembed_departure(
        &mut self,
        new_graph: Graph,
        removed: VertexId,
    ) -> Result<ReembedReport, EmbedError> {
        let plan = if self.graph.vertex_count() == new_graph.vertex_count() + 1 {
            planner::plan_departure(&self.graph, &self.tree, &new_graph, removed)
        } else {
            planner::DeltaPlan {
                planned: DeltaClass::Fallback,
                action: PlanAction::Full(FullCause::VertexSetChanged),
            }
        };
        self.reembed_planned(new_graph, plan)
    }

    /// Executes a planned delta: runs the staged repair or the full
    /// fallback, and commits only on success.
    fn reembed_planned(
        &mut self,
        new_graph: Graph,
        plan: planner::DeltaPlan,
    ) -> Result<ReembedReport, EmbedError> {
        let planned = plan.planned;
        let cache = self.cache.take().unwrap_or_default();
        match plan.action {
            PlanAction::Full(cause) => self.reembed_full(new_graph, cache, cause, planned),
            PlanAction::Incremental(repair) => {
                let (result, rounds, cache) = {
                    let mut ctx = ExecutionContext::with_kernel_cache(&new_graph, &self.cfg, cache);
                    let result = self.run_incremental(&new_graph, &repair, &mut ctx);
                    let rounds = ctx.rounds_used();
                    (result, rounds, ctx.into_kernel_cache())
                };
                match result {
                    Ok(overlay) => {
                        let Overlay {
                            nodes,
                            rotation,
                            certification,
                            splice,
                            counts,
                        } = *overlay;
                        let repair = *repair;
                        let dirty_region = repair.dirty_region();
                        self.graph = new_graph;
                        self.tree = repair.tree;
                        self.nodes = nodes;
                        self.rotation = rotation;
                        self.certification = certification;
                        self.cache = Some(cache);
                        Ok(ReembedReport {
                            path: ReembedPath::Incremental {
                                class: repair.class,
                                dirty_region,
                                recomputed_partitions: counts.recomputed_partitions,
                                reused_partitions: counts.reused_partitions,
                                recomputed_merges: counts.recomputed_merges,
                                reused_merges: counts.reused_merges,
                                splice,
                            },
                            planned,
                            rounds,
                        })
                    }
                    Err(e) => {
                        self.cache = Some(cache);
                        Err(e)
                    }
                }
            }
        }
    }

    /// The full fallback: a retained re-run on `new_graph`, committing
    /// only on success (a rejected delta leaves the resident state
    /// untouched, exactly like the incremental path). The tree that comes
    /// back is rooted at the fresh election — the new sticky root.
    fn reembed_full(
        &mut self,
        new_graph: Graph,
        cache: KernelCache,
        cause: FullCause,
        planned: DeltaClass,
    ) -> Result<ReembedReport, EmbedError> {
        match full_pass(&new_graph, &self.cfg, cache) {
            Ok((tree, nodes, rotation, certification, rounds, cache)) => {
                self.graph = new_graph;
                self.tree = tree;
                self.nodes = nodes;
                self.rotation = rotation;
                self.certification = certification;
                self.cache = Some(cache);
                Ok(ReembedReport {
                    path: ReembedPath::Full { cause },
                    planned,
                    rounds,
                })
            }
            Err((e, cache)) => {
                self.cache = Some(cache);
                Err(e)
            }
        }
    }

    /// The staged incremental rebuild: density guard, dirty-region arena
    /// rebuild with adoption, epilogue, certificate splice — all staged
    /// into an [`Overlay`], never touching the resident state.
    fn run_incremental(
        &self,
        new_graph: &Graph,
        repair: &RepairPlan,
        ctx: &mut ExecutionContext<'_>,
    ) -> Result<Box<Overlay>, EmbedError> {
        let n = new_graph.vertex_count();
        // The same density guard the full driver runs before recursing.
        if n >= 3 && new_graph.edge_count() > 3 * n - 6 {
            return Err(EmbedError::NonPlanar);
        }

        // Propagate dirt up the repaired tree: a subtree is dirty iff it
        // contains a dirty vertex, so marking parents in decreasing-depth
        // order computes every subtree's flag in O(n).
        let tree = &repair.tree;
        let mut has_dirty = vec![false; n];
        let mut has_tree_dirty = vec![false; n];
        for &v in &repair.tree_dirty {
            has_dirty[v.index()] = true;
            has_tree_dirty[v.index()] = true;
        }
        for &v in &repair.edge_dirty {
            has_dirty[v.index()] = true;
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by_key(|&i| std::cmp::Reverse(tree.depth[i]));
        for &i in &order {
            if let Some(p) = tree.parent[i] {
                if has_dirty[i] {
                    has_dirty[p.index()] = true;
                }
                if has_tree_dirty[i] {
                    has_tree_dirty[p.index()] = true;
                }
            }
        }

        // Address the old arena by subproblem root (each vertex roots at
        // most one subproblem), under the new ids.
        let phi = |x: VertexId| match repair.removed {
            Some(r) if x > r => VertexId(x.0 - 1),
            _ => x,
        };
        let mut old_at: HashMap<VertexId, usize> = HashMap::with_capacity(self.nodes.len());
        for (oi, node) in self.nodes.iter().enumerate() {
            if Some(node.root) == repair.removed {
                continue;
            }
            let prev = old_at.insert(phi(node.root), oi);
            debug_assert!(prev.is_none(), "a vertex roots at most one subproblem");
        }

        let mut rebuild = Rebuild {
            old_nodes: &self.nodes,
            old_at,
            tree,
            removed: repair.removed,
            has_dirty,
            has_tree_dirty,
            nodes: Vec::with_capacity(self.nodes.len()),
            counts: ReuseCounts::default(),
        };
        let root_ni = rebuild.build(ctx, &self.cfg, tree.root, 0)?;
        debug_assert_eq!(root_ni, 0);
        let root_len = rebuild.nodes[0].part.as_ref().map_or(0, PartState::len);
        if root_len != n {
            return Err(EmbedError::Internal(format!(
                "incremental recursion merged only {root_len} of {n} vertices"
            )));
        }
        let counts = rebuild.counts;
        let nodes = rebuild.nodes;

        // Centralized fidelity epilogue — the same call, on the same
        // graph, as the full driver's (`driver.rs` fidelity note), so the
        // resulting rotation is bit-identical by construction.
        let rotation = planar_lib::embed(new_graph)?;
        debug_assert!(rotation.is_planar_embedding());

        let (certification, splice) = if self.cfg.certify {
            ctx.enter(Phase::Cert);
            let scratch = build_certificates(new_graph, &rotation)
                .map_err(|e| EmbedError::Internal(format!("certification: {e}")))?;
            let old = self
                .certification
                .as_ref()
                .map(|c| c.certificates.as_slice())
                .unwrap_or(&[]);
            let (spliced, stats) = match repair.removed {
                Some(v) => splice_certificates_shifted(old, scratch, v.index()),
                None => splice_certificates(old, scratch),
            };
            let cert = certify_with_certificates(new_graph, &rotation, spliced, &self.cfg)?;
            ctx.charge(&cert.report.metrics);
            if !cert.accepted() {
                return Err(EmbedError::Internal(format!(
                    "distributed certification rejected the re-embedding: rejections {:?}, incomplete {:?}",
                    cert.report.rejections, cert.report.incomplete
                )));
            }
            (Some(cert), Some(stats))
        } else {
            (None, None)
        };

        Ok(Box::new(Overlay {
            nodes,
            rotation,
            certification,
            splice,
            counts,
        }))
    }
}

/// The dirty-region arena rebuild. Walks the repaired tree top-down,
/// adopting clean sub-arenas from the old one and re-running partitions
/// and merges only along the dirty chains.
struct Rebuild<'a> {
    old_nodes: &'a [RecNode],
    /// Old arena index by subproblem root, in new (post-renumbering) ids.
    old_at: HashMap<VertexId, usize>,
    /// The repaired tree.
    tree: &'a GlobalTree,
    /// `Some(v)` when old ids above `v` shift down by one.
    removed: Option<VertexId>,
    /// `has_dirty[v]`: the repaired subtree of `v` contains a tree-record
    /// change or a delta endpoint (its merge is stale).
    has_dirty: Vec<bool>,
    /// `has_tree_dirty[v]`: the repaired subtree of `v` contains a
    /// tree-record change (its partition is stale too).
    has_tree_dirty: Vec<bool>,
    nodes: Vec<RecNode>,
    counts: ReuseCounts,
}

impl Rebuild<'_> {
    fn phi(&self, x: VertexId) -> VertexId {
        match self.removed {
            Some(r) if x > r => VertexId(x.0 - 1),
            _ => x,
        }
    }

    /// Renumbers a retained partition into the new id space. The mapping
    /// is monotone, so sorted member lists and the root-to-splitter order
    /// of `p0` survive as-is.
    fn map_partition(&self, p: &Partition) -> Partition {
        if self.removed.is_none() {
            return p.clone();
        }
        Partition {
            p0: p.p0.iter().map(|&v| self.phi(v)).collect(),
            parts: p
                .parts
                .iter()
                .map(|s| SubProblem {
                    root: self.phi(s.root),
                    members: s.members.iter().map(|&v| self.phi(v)).collect(),
                })
                .collect(),
            metrics: p.metrics,
        }
    }

    /// Renumbers a retained part. Monotone renumbering preserves the
    /// sorted member order and the maximum-member leader.
    fn map_part(&self, p: &PartState) -> PartState {
        if self.removed.is_none() {
            return p.clone();
        }
        PartState::new(p.members.iter().map(|&v| self.phi(v)).collect())
    }

    /// Adopts the old arena subtree rooted at old index `oi` wholesale:
    /// same partitions, parts, metrics, and merge statistics, renumbered
    /// into the new id space. Valid because the node's new subtree equals
    /// its old one (no tree-record change inside) and no merge inside saw
    /// a changed edge.
    fn adopt(&mut self, oi: usize, level: usize) -> usize {
        let ni = self.nodes.len();
        let old = &self.old_nodes[oi];
        let partition = old.partition.as_ref().map(|p| self.map_partition(p));
        if partition.is_some() {
            self.counts.reused_partitions += 1;
            self.counts.reused_merges += 1;
        }
        self.nodes.push(RecNode {
            root: self.phi(old.root),
            level,
            children: Vec::new(),
            partition,
            part: old.part.as_ref().map(|p| self.map_part(p)),
            metrics: old.metrics,
            merge_stats: old.merge_stats.clone(),
        });
        let kids = self.old_nodes[oi].children.clone();
        for ci in kids {
            let c = self.adopt(ci, level + 1);
            self.nodes[ni].children.push(c);
        }
        ni
    }

    /// Builds the new arena node for the subproblem rooted at `root`,
    /// adopting or re-running as the dirty flags dictate. Returns the new
    /// node's index.
    fn build(
        &mut self,
        ctx: &mut ExecutionContext<'_>,
        cfg: &EmbedderConfig,
        root: VertexId,
        level: usize,
    ) -> Result<usize, EmbedError> {
        let ri = root.index();
        if !self.has_dirty[ri] {
            if let Some(&oi) = self.old_at.get(&root) {
                return Ok(self.adopt(oi, level));
            }
        }
        let ni = self.nodes.len();
        self.nodes.push(RecNode {
            root,
            level,
            children: Vec::new(),
            partition: None,
            part: None,
            metrics: Metrics::new(),
            merge_stats: None,
        });
        let size = self.tree.subtree_size[ri] as usize;
        if size == 1 {
            // Leaf subproblems are graph-independent.
            self.nodes[ni].part = Some(PartState::new(vec![root]));
            return Ok(ni);
        }

        // Partition: reuse the retained one when the subtree's tree
        // records are unchanged (partition content is a pure function of
        // the tree); re-run it through the kernel otherwise.
        let reused = if !self.has_tree_dirty[ri] {
            self.old_at
                .get(&root)
                .and_then(|&oi| self.old_nodes[oi].partition.as_ref())
                .map(|p| self.map_partition(p))
        } else {
            None
        };
        let partition = match reused {
            Some(p) => {
                self.counts.reused_partitions += 1;
                p
            }
            None => {
                ctx.enter(Phase::Partition);
                let p = partition_subtree_ctx(ctx, self.tree, root)?;
                ctx.charge(&p.metrics);
                validate_partition(ctx.graph(), size, &p, cfg)?;
                self.counts.recomputed_partitions += 1;
                p
            }
        };

        let mut kids = Vec::with_capacity(partition.parts.len());
        for sub in &partition.parts {
            kids.push(self.build(ctx, cfg, sub.root, level + 1)?);
        }
        let mut children_metrics = Metrics::new();
        let mut hanging = Vec::with_capacity(kids.len());
        for &ci in &kids {
            children_metrics.join_parallel(self.nodes[ci].metrics);
            hanging.push(self.nodes[ci].part.clone().expect("child solved"));
        }
        ctx.enter(Phase::Merge);
        let merged = merge_parts_ctx(ctx, partition.p0.clone(), hanging, cfg.check_invariants)?;
        ctx.charge(&merged.metrics);
        self.counts.recomputed_merges += 1;

        let mut total = partition.metrics;
        total.add(children_metrics);
        total.add(merged.metrics);
        let node = &mut self.nodes[ni];
        node.children = kids;
        node.partition = Some(partition);
        node.part = Some(merged.part);
        node.metrics = total;
        node.merge_stats = Some(merged.stats);
        Ok(ni)
    }
}

/// One full retained run: recursion with the arena kept, centralized
/// epilogue, optional certification. Returns the cache even on error so
/// the caller's warm buffers survive a rejected delta.
type FullPassOk = (
    GlobalTree,
    Vec<RecNode>,
    RotationSystem,
    Option<Certification>,
    usize,
    KernelCache,
);

fn full_pass(
    graph: &Graph,
    cfg: &EmbedderConfig,
    cache: KernelCache,
) -> Result<FullPassOk, (EmbedError, KernelCache)> {
    let mut ctx = ExecutionContext::with_kernel_cache(graph, cfg, cache);
    let result = run_full(graph, cfg, &mut ctx);
    let rounds = ctx.rounds_used();
    let cache = ctx.into_kernel_cache();
    match result {
        Ok((tree, nodes, rotation, certification)) => {
            Ok((tree, nodes, rotation, certification, rounds, cache))
        }
        Err(e) => Err((e, cache)),
    }
}

#[allow(clippy::type_complexity)]
fn run_full(
    graph: &Graph,
    cfg: &EmbedderConfig,
    ctx: &mut ExecutionContext<'_>,
) -> Result<
    (
        GlobalTree,
        Vec<RecNode>,
        RotationSystem,
        Option<Certification>,
    ),
    EmbedError,
> {
    let (tree, nodes, _metrics, _stats) = run_recursion_retained(graph, cfg, ctx)?;
    let rotation = planar_lib::embed(graph)?;
    debug_assert!(rotation.is_planar_embedding());
    let certification = if cfg.certify {
        ctx.enter(Phase::Cert);
        let cert = certify_embedding(graph, &rotation, cfg)?;
        ctx.charge(&cert.report.metrics);
        if !cert.accepted() {
            return Err(EmbedError::Internal(format!(
                "distributed certification rejected the embedding: rejections {:?}, incomplete {:?}",
                cert.report.rejections, cert.report.incomplete
            )));
        }
        Some(cert)
    } else {
        None
    };
    Ok((tree, nodes, rotation, certification))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed_distributed;
    use planar_lib::gen;

    fn cfg(certify: bool) -> EmbedderConfig {
        EmbedderConfig {
            certify,
            ..EmbedderConfig::default()
        }
    }

    /// The resident build equals a one-shot embed on the same graph.
    #[test]
    fn build_matches_embed_distributed() {
        let g = gen::grid(4, 5);
        let (resident, report) = ResidentEmbedding::build(g.clone(), &cfg(true)).unwrap();
        let full = embed_distributed(&g, &cfg(true)).unwrap();
        assert_eq!(resident.rotation(), &full.rotation);
        assert_eq!(
            resident.certification().map(|c| c.accepted()),
            full.certification.as_ref().map(|c| c.accepted())
        );
        assert!(matches!(
            report.path,
            ReembedPath::Full {
                cause: FullCause::InitialBuild
            }
        ));
    }

    /// A non-tree edge delta takes the `TreePreserving` incremental path
    /// and matches the full oracle bit for bit (rotation, certification
    /// verdict).
    #[test]
    fn incremental_edge_delta_matches_oracle() {
        let g = gen::grid(8, 8);
        let (mut resident, _) = ResidentEmbedding::build(g.clone(), &cfg(true)).unwrap();
        // Delete a non-tree edge: removing it leaves every tree path (and
        // hence every BFS distance and deterministic parent choice)
        // intact, so the tree survives and the delta is `TreePreserving`.
        let mut mutated = g.clone();
        let victim = g
            .edges()
            .find(|e| {
                resident.tree.parent[e.lo().index()] != Some(e.hi())
                    && resident.tree.parent[e.hi().index()] != Some(e.lo())
            })
            .expect("a grid has non-tree edges");
        mutated.remove_edge(victim.lo(), victim.hi()).unwrap();

        let report = resident.reembed(mutated.clone()).unwrap();
        assert!(report.is_incremental(), "path: {:?}", report.path);
        assert_eq!(report.planned, DeltaClass::TreePreserving);
        assert_eq!(report.taken(), DeltaClass::TreePreserving);
        if let ReembedPath::Incremental {
            recomputed_partitions,
            recomputed_merges,
            reused_merges,
            splice,
            dirty_region,
            ..
        } = &report.path
        {
            assert_eq!(*recomputed_partitions, 0, "the tree was preserved");
            assert!(*recomputed_merges > 0);
            assert!(
                reused_merges > recomputed_merges,
                "most merges must be reused ({reused_merges} reused, {recomputed_merges} re-run)"
            );
            assert_eq!(*dirty_region, 2);
            assert!(splice.as_ref().unwrap().reused > 0);
        }
        let oracle = embed_distributed(&mutated, &cfg(true)).unwrap();
        assert_eq!(resident.rotation(), &oracle.rotation);
        assert_eq!(
            resident.certification().unwrap().report.accepted,
            oracle.certification.unwrap().report.accepted
        );
        assert_eq!(resident.graph(), &mutated);
    }

    /// Deleting a repairable tree edge splices the tree and re-runs only
    /// the dirty chains — no full fallback, bit-identical to the oracle.
    #[test]
    fn tree_edge_delta_repairs_the_dirty_region() {
        let g = gen::grid(6, 6);
        let (mut resident, _) = ResidentEmbedding::build(g.clone(), &cfg(true)).unwrap();
        let tree = &resident.tree;
        let victim = g
            .edges()
            .find(|e| {
                let c = if tree.parent[e.lo().index()] == Some(e.hi()) {
                    e.lo()
                } else if tree.parent[e.hi().index()] == Some(e.lo()) {
                    e.hi()
                } else {
                    return false;
                };
                g.neighbors(c).iter().any(|&w| {
                    tree.depth[w.index()] + 1 == tree.depth[c.index()]
                        && Some(w) != tree.parent[c.index()]
                })
            })
            .expect("a grid has a repairable tree edge");
        let mut mutated = g.clone();
        mutated.remove_edge(victim.lo(), victim.hi()).unwrap();

        let report = resident.reembed(mutated.clone()).unwrap();
        assert_eq!(
            report.taken(),
            DeltaClass::TreeRepairable,
            "path: {:?}",
            report.path
        );
        assert_eq!(report.planned, DeltaClass::TreeRepairable);
        if let ReembedPath::Incremental {
            recomputed_partitions,
            reused_partitions,
            ..
        } = &report.path
        {
            assert!(*recomputed_partitions > 0, "the dirty chain re-partitions");
            assert!(
                reused_partitions > recomputed_partitions,
                "most partitions must be reused"
            );
        }
        let oracle = embed_distributed(&mutated, &cfg(true)).unwrap();
        assert_eq!(resident.rotation(), &oracle.rotation);
        assert_eq!(resident.graph(), &mutated);
        // The resident can keep absorbing deltas after a repair.
        let report = resident.reembed(resident.graph().clone()).unwrap();
        assert!(report.is_incremental());
    }

    /// An insert between same-depth endpoints takes the incremental path
    /// — this was a guaranteed full fallback before the delta planner.
    #[test]
    fn insert_takes_the_incremental_path() {
        let g = gen::grid(6, 6);
        let (mut resident, _) = ResidentEmbedding::build(g.clone(), &cfg(true)).unwrap();
        let tree = &resident.tree;
        let mut pair = None;
        'outer: for u in g.vertices() {
            for v in g.vertices() {
                if u < v && !g.has_edge(u, v) && tree.depth[u.index()] == tree.depth[v.index()] {
                    let mut m = g.clone();
                    m.add_edge(u, v).unwrap();
                    if planar_lib::embed(&m).is_ok() {
                        pair = Some((u, v));
                        break 'outer;
                    }
                }
            }
        }
        let (u, v) = pair.expect("a grid has a planar same-depth insert");
        let mut mutated = g.clone();
        mutated.add_edge(u, v).unwrap();
        let report = resident.reembed(mutated.clone()).unwrap();
        assert!(report.is_incremental(), "path: {:?}", report.path);
        assert_eq!(report.taken(), DeltaClass::TreePreserving);
        let oracle = embed_distributed(&mutated, &cfg(true)).unwrap();
        assert_eq!(resident.rotation(), &oracle.rotation);
    }

    /// A pendant arrival grafts into the resident tree and takes the
    /// incremental `VertexSetChange` path, bit-identical to the oracle.
    #[test]
    fn pendant_arrival_takes_the_incremental_path() {
        let g = gen::wheel(10);
        let (mut resident, _) = ResidentEmbedding::build(g.clone(), &cfg(true)).unwrap();
        let mut mutated = g.clone();
        let fresh = mutated.add_vertex();
        mutated.add_edge(fresh, VertexId(0)).unwrap();
        let report = resident.reembed(mutated.clone()).unwrap();
        assert_eq!(
            report.taken(),
            DeltaClass::VertexSetChange,
            "path: {:?}",
            report.path
        );
        let oracle = embed_distributed(&mutated, &cfg(true)).unwrap();
        assert_eq!(resident.rotation(), &oracle.rotation);
        assert_eq!(
            resident.certification().unwrap().report.accepted,
            oracle.certification.unwrap().report.accepted
        );
    }

    /// A leaf departure (with the explicit hint) renumbers the resident
    /// arena and takes the incremental path; the certificates splice
    /// shift-aware.
    #[test]
    fn leaf_departure_takes_the_incremental_path() {
        let g = gen::grid(5, 5);
        let (mut resident, _) = ResidentEmbedding::build(g.clone(), &cfg(true)).unwrap();
        let tree = &resident.tree;
        let leaf = g
            .vertices()
            .find(|&v| {
                tree.children[v.index()].is_empty() && v != tree.root && {
                    let mut m = g.clone();
                    m.remove_vertex(v).unwrap();
                    m.is_connected()
                }
            })
            .expect("a grid tree has removable leaves");
        let mut mutated = g.clone();
        mutated.remove_vertex(leaf).unwrap();
        let report = resident.reembed_departure(mutated.clone(), leaf).unwrap();
        assert_eq!(
            report.taken(),
            DeltaClass::VertexSetChange,
            "path: {:?}",
            report.path
        );
        let oracle = embed_distributed(&mutated, &cfg(true)).unwrap();
        assert_eq!(resident.rotation(), &oracle.rotation);
        assert_eq!(resident.graph(), &mutated);
        // And the renumbered resident keeps serving.
        let mut again = mutated.clone();
        let fresh = again.add_vertex();
        again.add_edge(fresh, VertexId(0)).unwrap();
        let report = resident.reembed(again.clone()).unwrap();
        assert_eq!(report.taken(), DeltaClass::VertexSetChange);
        let oracle = embed_distributed(&again, &cfg(true)).unwrap();
        assert_eq!(resident.rotation(), &oracle.rotation);
    }

    /// A departure without the hint falls back to the full path (the
    /// removed id is not recoverable from the renumbered graph alone).
    #[test]
    fn unhinted_departure_falls_back_to_full() {
        let g = gen::grid(4, 4);
        let (mut resident, _) = ResidentEmbedding::build(g.clone(), &cfg(false)).unwrap();
        let tree = &resident.tree;
        let leaf = g
            .vertices()
            .find(|&v| {
                tree.children[v.index()].is_empty() && v != tree.root && {
                    let mut m = g.clone();
                    m.remove_vertex(v).unwrap();
                    m.is_connected()
                }
            })
            .unwrap();
        let mut mutated = g.clone();
        mutated.remove_vertex(leaf).unwrap();
        let report = resident.reembed(mutated.clone()).unwrap();
        assert!(matches!(
            report.path,
            ReembedPath::Full {
                cause: FullCause::VertexSetChanged
            }
        ));
        let oracle = embed_distributed(&mutated, &EmbedderConfig::default()).unwrap();
        assert_eq!(resident.rotation(), &oracle.rotation);
    }

    /// A tree-edge deletion with no alternative parent cascades and falls
    /// back as `TreeChanged`, still matching the oracle.
    #[test]
    fn cascading_tree_edge_delta_falls_back_to_full() {
        let g = gen::cycle(7);
        let (mut resident, _) = ResidentEmbedding::build(g.clone(), &cfg(false)).unwrap();
        // In a cycle rooted at the max id, vertex 1 hangs under 0 and has
        // no other up-neighbor: deleting {0, 1} re-routes its whole path.
        let mut mutated = g.clone();
        mutated.remove_edge(VertexId(0), VertexId(1)).unwrap();
        let report = resident.reembed(mutated.clone()).unwrap();
        assert!(matches!(
            report.path,
            ReembedPath::Full {
                cause: FullCause::TreeChanged
            }
        ));
        assert_eq!(report.planned, DeltaClass::Fallback);
        assert_eq!(report.taken(), DeltaClass::Fallback);
        let oracle = embed_distributed(&mutated, &EmbedderConfig::default()).unwrap();
        assert_eq!(resident.rotation(), &oracle.rotation);
    }

    /// A planarity-breaking delta is rejected with the resident state
    /// fully intact (graph, rotation, certificates).
    #[test]
    fn rejected_delta_leaves_resident_untouched() {
        let g = gen::grid(4, 4);
        let (mut resident, _) = ResidentEmbedding::build(g.clone(), &cfg(true)).unwrap();
        let before_rotation = resident.rotation().clone();
        // K5 on the first five vertices makes the graph non-planar.
        let mut mutated = g.clone();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                if !mutated.has_edge(VertexId(u), VertexId(v)) {
                    mutated.add_edge(VertexId(u), VertexId(v)).unwrap();
                }
            }
        }
        let err = resident.reembed(mutated).unwrap_err();
        assert!(matches!(err, EmbedError::NonPlanar));
        assert_eq!(resident.graph(), &g);
        assert_eq!(resident.rotation(), &before_rotation);
        // And the resident can still serve further deltas.
        let mut ok = g.clone();
        ok.add_edge(VertexId(0), VertexId(5)).unwrap_or(());
        // (edge may exist in the grid; reembed on the unchanged graph is
        // also a valid no-op delta)
        let report = resident.reembed(ok).unwrap();
        assert!(report.rounds > 0);
    }

    /// A planarity-breaking *incremental-classed* delta is also rejected
    /// with the resident untouched: the overlay staging covers the
    /// repaired-tree path, not just the full fallback.
    #[test]
    fn rejected_incremental_delta_leaves_resident_untouched() {
        // A maximal planar graph: any insert breaks the density bound.
        let g = gen::random_maximal_planar(16, 5);
        let (mut resident, _) = ResidentEmbedding::build(g.clone(), &cfg(true)).unwrap();
        let before_rotation = resident.rotation().clone();
        let tree = &resident.tree;
        let pair = {
            let mut found = None;
            'outer: for u in g.vertices() {
                for v in g.vertices() {
                    if u < v && !g.has_edge(u, v) && tree.depth[u.index()] == tree.depth[v.index()]
                    {
                        found = Some((u, v));
                        break 'outer;
                    }
                }
            }
            found
        };
        if let Some((u, v)) = pair {
            let mut mutated = g.clone();
            mutated.add_edge(u, v).unwrap();
            let err = resident.reembed(mutated).unwrap_err();
            assert!(matches!(err, EmbedError::NonPlanar));
            assert_eq!(resident.graph(), &g);
            assert_eq!(resident.rotation(), &before_rotation);
        }
    }

    /// Faulted configurations are rejected up front.
    #[test]
    fn faulted_config_is_rejected() {
        let mut c = cfg(false);
        c.sim.faults = congest_sim::FaultPlan::uniform(3, 0.1, 0.0, 0.0, 1);
        assert!(matches!(
            ResidentEmbedding::build(gen::path(4), &c),
            Err(EmbedError::Internal(_))
        ));
    }
}
