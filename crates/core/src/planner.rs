//! The delta planner: classifies a graph delta against the resident BFS
//! tree and stages the minimal tree repair, so the incremental path
//! (`crate::incremental`) re-runs only the dirty region of the recursion.
//!
//! # The sticky-root model
//!
//! The distributed setup elects the maximum-id vertex and floods a BFS
//! wave from it. Both kernels deliver each round's inbox sorted ascending
//! by sender id, and the wave from the root reaches a vertex `v` at
//! distance `d` simultaneously from *all* of its neighbors at distance
//! `d − 1` — so the first (and winning) offer comes from the minimum-id
//! such neighbor. The setup tree is therefore a pure function of the
//! graph and the root:
//!
//! * `depth(v)` = BFS distance from the root,
//! * `parent(v)` = minimum-id neighbor of `v` at depth `depth(v) − 1`,
//! * `children(v)` = sorted ascending (the kernel sorts and dedups them).
//!
//! [`model_bfs`] reproduces exactly this tree host-side in `O(n + m)`,
//! without simulating a single kernel round. A resident embedding pins
//! its tree to the root of its *last full build* (the "sticky root") and
//! lets the planner repair that tree across deltas: partitions and merges
//! are valid for a BFS tree from any fixed root, and every externally
//! visible output (rotation, certificates, planarity verdict) comes from
//! root-independent functions of the graph, so the sticky root never
//! leaks into the bit-identity contract. Node arrivals append the new
//! maximum id but the root stays sticky until the next full fallback
//! re-elects.
//!
//! # Classification
//!
//! Each delta is classified into a typed [`DeltaClass`] with a proof
//! obligation the planner then *discharges mechanically*: it applies the
//! predicted splice to a copy of the resident tree (via the `tree.rs`
//! machinery) and verifies the result field-for-field against a fresh
//! [`model_bfs`] of the mutated graph. A verification miss takes the full
//! path (recorded as [`FullCause::PlanRejected`]) instead of committing a
//! wrong tree — and the DST churn oracle treats any planned-vs-taken
//! mismatch as a violation, so a planner bug cannot hide.
//!
//! The per-class repair arguments (all under the min-id parent rule):
//!
//! * **Edge delete, non-tree**: tree paths realize every BFS distance, so
//!   distances survive; the deleted endpoint was never a min-id parent
//!   candidate winner. Tree unchanged — `TreePreserving`.
//! * **Edge delete, tree edge `{p, c}`**: if `c` keeps another neighbor
//!   at `depth(c) − 1`, alternative equal-length paths keep every
//!   distance; `c` re-hangs under the min-id remaining candidate —
//!   `TreeRepairable`. No alternative ⇒ distances cascade — `Fallback`.
//! * **Edge insert `{u, v}`**: equal depths change no candidate set —
//!   `TreePreserving`. Depth gap 1 with the shallow endpoint id below
//!   `parent(deep)`: the deep endpoint re-hangs — `TreeRepairable`
//!   (otherwise `TreePreserving`). Gap ≥ 2 shortens distances —
//!   `Fallback`.
//! * **Arrival** (fresh max id `p`, anchors `a₁..a_k`): if the anchor
//!   depth spread is ≤ 2, no old distance can shortcut through `p`, and
//!   `p` grafts as a leaf under the min-id anchor of minimum depth — `p`
//!   is the maximum id, so it never steals an existing parent slot —
//!   `VertexSetChange`. Wider spread — `Fallback`.
//! * **Departure of `v`**: if `v` is a tree leaf (and not the root), no
//!   depth or parent choice changes — `v` was never a winning candidate —
//!   and the monotone renumbering `φ(x) = x > v ? x − 1 : x` preserves
//!   every id-order tie-break — `VertexSetChange`. Otherwise `Fallback`.

use std::collections::VecDeque;

use planar_graph::{EdgeId, Graph, VertexId};

use crate::incremental::FullCause;
use crate::tree::GlobalTree;

/// Typed classification of one delta against the resident embedding —
/// which repair the planner stages, and therefore how much of the
/// recursion re-runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeltaClass {
    /// The BFS tree is untouched; every retained partition stays exact
    /// and only merges seeing a delta endpoint re-run.
    TreePreserving,
    /// The tree is repaired by splicing the affected subtree (a
    /// re-parent); partitions and merges along the dirty chains re-run.
    TreeRepairable,
    /// The vertex set changed but the tree repair is local (pendant-style
    /// arrival graft or leaf departure prune, with monotone renumbering).
    VertexSetChange,
    /// No local repair exists; the delta takes the full retained re-run.
    Fallback,
}

impl DeltaClass {
    /// Stable string form, used in JSON reports and CI filters.
    pub fn code(self) -> &'static str {
        match self {
            DeltaClass::TreePreserving => "tree-preserving",
            DeltaClass::TreeRepairable => "tree-repairable",
            DeltaClass::VertexSetChange => "vertex-set",
            DeltaClass::Fallback => "fallback",
        }
    }

    /// `true` for the classes that claim the incremental path.
    pub fn is_incremental(self) -> bool {
        !matches!(self, DeltaClass::Fallback)
    }

    /// All classes, in report order.
    pub const ALL: [DeltaClass; 4] = [
        DeltaClass::TreePreserving,
        DeltaClass::TreeRepairable,
        DeltaClass::VertexSetChange,
        DeltaClass::Fallback,
    ];
}

impl std::fmt::Display for DeltaClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// A staged, verified tree repair: everything the incremental engine
/// needs to rebuild only the dirty region of the recursion arena.
pub(crate) struct RepairPlan {
    /// The measured class (equal to the planned class — a mismatch is
    /// rejected before a plan is built).
    pub class: DeltaClass,
    /// The repaired tree, verified against [`model_bfs`] of the mutated
    /// graph.
    pub tree: GlobalTree,
    /// `Some(v)` for a departure: old ids above `v` shift down by one.
    pub removed: Option<VertexId>,
    /// Vertices (new ids) whose tree records changed — partitions of
    /// subtrees containing one are stale.
    pub tree_dirty: Vec<VertexId>,
    /// Vertices (new ids) incident to a changed edge — merges of subtrees
    /// containing one are stale.
    pub edge_dirty: Vec<VertexId>,
}

impl RepairPlan {
    /// Number of distinct dirty vertices (the report's dirty-region size).
    pub fn dirty_region(&self) -> usize {
        let mut all: Vec<VertexId> = self
            .tree_dirty
            .iter()
            .chain(self.edge_dirty.iter())
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        all.len()
    }
}

/// What the planner decided for one delta.
pub(crate) enum PlanAction {
    /// Take the full retained re-run, for the recorded cause.
    Full(FullCause),
    /// Run the staged incremental repair.
    Incremental(Box<RepairPlan>),
}

/// The planner's verdict: the predicted class plus the action. The
/// predicted class and the taken path can disagree only through
/// [`FullCause::PlanRejected`] — which the DST churn oracle flags.
pub(crate) struct DeltaPlan {
    pub planned: DeltaClass,
    pub action: PlanAction,
}

impl DeltaPlan {
    fn full(planned: DeltaClass, cause: FullCause) -> Self {
        DeltaPlan {
            planned,
            action: PlanAction::Full(cause),
        }
    }
}

/// The host-side model of the deterministic kernel BFS: depths are BFS
/// distances from `root`, each non-root vertex's parent is its minimum-id
/// neighbor one level up, children lists are sorted ascending, and
/// subtree sizes accumulate bottom-up. Returns `None` when some vertex is
/// unreachable from `root` (the full path reproduces the exact
/// `Disconnected` error in that case).
///
/// The conformance test below pins this model field-for-field to the
/// distributed setup's output across the generator families.
pub(crate) fn model_bfs(g: &Graph, root: VertexId) -> Option<GlobalTree> {
    let n = g.vertex_count();
    if root.index() >= n {
        return None;
    }
    let mut depth = vec![u32::MAX; n];
    let mut order = Vec::with_capacity(n);
    depth[root.index()] = 0;
    let mut queue = VecDeque::from([root]);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &w in g.neighbors(v) {
            if depth[w.index()] == u32::MAX {
                depth[w.index()] = depth[v.index()] + 1;
                queue.push_back(w);
            }
        }
    }
    if order.len() != n {
        return None;
    }
    let mut parent = vec![None; n];
    let mut children: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for i in 0..n {
        let v = VertexId::from_index(i);
        if v == root {
            continue;
        }
        let want = depth[i] - 1;
        // Adjacency is sorted, so the first match is the minimum id.
        let p = g
            .neighbors(v)
            .iter()
            .copied()
            .find(|&w| depth[w.index()] == want)
            .expect("every reached non-root vertex has an up-neighbor");
        parent[i] = Some(p);
        // Iterating v in ascending id order keeps children sorted.
        children[p.index()].push(v);
    }
    let mut subtree_size = vec![1u64; n];
    for &v in order.iter().rev() {
        if let Some(p) = parent[v.index()] {
            subtree_size[p.index()] += subtree_size[v.index()];
        }
    }
    Some(GlobalTree {
        root,
        parent,
        children,
        depth,
        subtree_size,
    })
}

/// Field-wise equality of two global BFS trees — the oracle-grade check
/// a staged repair must pass before the engine commits anything.
pub(crate) fn same_tree(a: &GlobalTree, b: &GlobalTree) -> bool {
    a.root == b.root
        && a.parent == b.parent
        && a.children == b.children
        && a.depth == b.depth
        && a.subtree_size == b.subtree_size
}

/// Vertices whose tree records (parent, children, depth, subtree size)
/// differ between the two trees. Indices beyond the shorter tree count as
/// changed, so an arrival's fresh vertex is always reported.
pub(crate) fn tree_changes(old: &GlobalTree, new: &GlobalTree) -> Vec<VertexId> {
    let common = old.parent.len().min(new.parent.len());
    let longest = old.parent.len().max(new.parent.len());
    let mut out = Vec::new();
    for i in 0..common {
        if old.parent[i] != new.parent[i]
            || old.depth[i] != new.depth[i]
            || old.subtree_size[i] != new.subtree_size[i]
            || old.children[i] != new.children[i]
        {
            out.push(VertexId::from_index(i));
        }
    }
    for i in common..longest {
        out.push(VertexId::from_index(i));
    }
    out
}

/// The symmetric difference of the two graphs' edge sets, split into
/// inserted and deleted edges. Both edge iterators yield canonical sorted
/// order, so a single merge walk suffices.
pub(crate) fn edge_diff(old: &Graph, new: &Graph) -> (Vec<EdgeId>, Vec<EdgeId>) {
    let mut inserted = Vec::new();
    let mut deleted = Vec::new();
    let mut a = old.edges().peekable();
    let mut b = new.edges().peekable();
    loop {
        match (a.peek(), b.peek()) {
            (Some(&x), Some(&y)) if x == y => {
                a.next();
                b.next();
            }
            (Some(&x), Some(&y)) if x < y => {
                deleted.push(x);
                a.next();
            }
            (Some(_), Some(&y)) => {
                inserted.push(y);
                b.next();
            }
            (Some(&x), None) => {
                deleted.push(x);
                a.next();
            }
            (None, Some(&y)) => {
                inserted.push(y);
                b.next();
            }
            (None, None) => break,
        }
    }
    (inserted, deleted)
}

/// Plans an edge delta (unchanged vertex set): prediction by the
/// classification rules, splice repair, and model verification.
pub(crate) fn plan_edge_delta(
    old_graph: &Graph,
    tree: &GlobalTree,
    new_graph: &Graph,
) -> DeltaPlan {
    debug_assert_eq!(old_graph.vertex_count(), new_graph.vertex_count());
    let (inserted, deleted) = edge_diff(old_graph, new_graph);
    let mut endpoints: Vec<VertexId> = inserted
        .iter()
        .chain(deleted.iter())
        .flat_map(|e| [e.lo(), e.hi()])
        .collect();
    endpoints.sort_unstable();
    endpoints.dedup();
    if endpoints.is_empty() {
        // A no-op delta: the entire arena is adoptable verbatim.
        return incremental_plan(
            DeltaClass::TreePreserving,
            tree.clone(),
            None,
            Vec::new(),
            new_graph,
            tree,
        );
    }

    let depth = |v: VertexId| tree.depth[v.index()];
    let parent = |v: VertexId| tree.parent[v.index()];
    let single = inserted.len() + deleted.len() == 1;
    let (planned, repaired) = if single {
        if let Some(&e) = deleted.first() {
            let (u, v) = (e.lo(), e.hi());
            let child = if parent(u) == Some(v) {
                Some(u)
            } else if parent(v) == Some(u) {
                Some(v)
            } else {
                None
            };
            match child {
                // Non-tree deletion: distances and parent choices survive.
                None => (DeltaClass::TreePreserving, Some(tree.clone())),
                Some(c) => {
                    // Tree edge: `c` needs another up-neighbor to re-hang
                    // from; sorted adjacency makes the first hit the
                    // minimum id, i.e. the new deterministic parent.
                    let want = depth(c) - 1;
                    match new_graph
                        .neighbors(c)
                        .iter()
                        .copied()
                        .find(|&w| depth(w) == want)
                    {
                        Some(w) => {
                            let mut t = tree.clone();
                            t.splice_reparent(c, w);
                            (DeltaClass::TreeRepairable, Some(t))
                        }
                        None => (DeltaClass::Fallback, None),
                    }
                }
            }
        } else {
            let e = inserted[0];
            let (u, v) = (e.lo(), e.hi());
            match depth(u).abs_diff(depth(v)) {
                // Same level: neither endpoint gains a parent candidate.
                0 => (DeltaClass::TreePreserving, Some(tree.clone())),
                1 => {
                    let (shallow, deep) = if depth(u) < depth(v) { (u, v) } else { (v, u) };
                    let p = parent(deep).expect("deep endpoint is not the root");
                    if shallow < p {
                        // The new edge wins the min-id parent tie-break.
                        let mut t = tree.clone();
                        t.splice_reparent(deep, shallow);
                        (DeltaClass::TreeRepairable, Some(t))
                    } else {
                        (DeltaClass::TreePreserving, Some(tree.clone()))
                    }
                }
                // A gap >= 2 shortens BFS distances: the repair cascades.
                _ => (DeltaClass::Fallback, None),
            }
        }
    } else {
        // Multi-edge deltas (not produced by the service layer): take the
        // incremental path only when measurement shows the tree survived.
        match model_bfs(new_graph, tree.root) {
            Some(model) if tree_changes(tree, &model).is_empty() => {
                (DeltaClass::TreePreserving, Some(model))
            }
            _ => (DeltaClass::Fallback, None),
        }
    };

    let Some(repaired) = repaired else {
        return DeltaPlan::full(planned, FullCause::TreeChanged);
    };
    incremental_plan(planned, repaired, None, endpoints, new_graph, tree)
}

/// Plans a node arrival: `new_graph` must be `old_graph` plus one
/// appended vertex (the fresh maximum id) and its anchor edges.
pub(crate) fn plan_arrival(old_graph: &Graph, tree: &GlobalTree, new_graph: &Graph) -> DeltaPlan {
    debug_assert_eq!(old_graph.vertex_count() + 1, new_graph.vertex_count());
    let fresh = VertexId::from_index(old_graph.vertex_count());
    let mut check = new_graph.clone();
    if check.remove_vertex(fresh).is_err() || check != *old_graph {
        // The delta is not a pure append; nothing to address the arena by.
        return DeltaPlan::full(DeltaClass::Fallback, FullCause::VertexSetChanged);
    }
    let anchors = new_graph.neighbors(fresh);
    if anchors.is_empty() {
        return DeltaPlan::full(DeltaClass::Fallback, FullCause::VertexSetChanged);
    }
    let dmin = anchors
        .iter()
        .map(|&a| tree.depth[a.index()])
        .min()
        .unwrap();
    let dmax = anchors
        .iter()
        .map(|&a| tree.depth[a.index()])
        .max()
        .unwrap();
    if dmax - dmin > 2 {
        // An old vertex could shortcut through the new one: cascade.
        return DeltaPlan::full(DeltaClass::Fallback, FullCause::VertexSetChanged);
    }
    // Anchors are sorted ascending, so the first at minimum depth is the
    // min-id parent candidate; `fresh` is the maximum id, so it grafts as
    // a leaf without stealing any existing parent slot.
    let graft_under = anchors
        .iter()
        .copied()
        .find(|&a| tree.depth[a.index()] == dmin)
        .unwrap();
    let mut repaired = tree.clone();
    let grafted = repaired.graft_leaf(graft_under);
    debug_assert_eq!(grafted, fresh);
    let mut edge_dirty: Vec<VertexId> = anchors.to_vec();
    edge_dirty.push(fresh);
    incremental_plan(
        DeltaClass::VertexSetChange,
        repaired,
        None,
        edge_dirty,
        new_graph,
        tree,
    )
}

/// Plans a node departure: `new_graph` must be `old_graph` with `removed`
/// deleted (higher ids compacted down by one).
pub(crate) fn plan_departure(
    old_graph: &Graph,
    tree: &GlobalTree,
    new_graph: &Graph,
    removed: VertexId,
) -> DeltaPlan {
    debug_assert_eq!(old_graph.vertex_count(), new_graph.vertex_count() + 1);
    if removed.index() >= old_graph.vertex_count() {
        return DeltaPlan::full(DeltaClass::Fallback, FullCause::VertexSetChanged);
    }
    let mut check = old_graph.clone();
    if check.remove_vertex(removed).is_err() || check != *new_graph {
        return DeltaPlan::full(DeltaClass::Fallback, FullCause::VertexSetChanged);
    }
    if removed == tree.root || !tree.children[removed.index()].is_empty() {
        // Root departures re-elect; internal departures re-hang whole
        // subtrees. Both cascade.
        return DeltaPlan::full(DeltaClass::Fallback, FullCause::VertexSetChanged);
    }
    let phi = |x: VertexId| {
        if x > removed {
            VertexId(x.0 - 1)
        } else {
            x
        }
    };
    let repaired = tree.prune_leaf_renumbered(removed);
    // A tree leaf is never a winning parent candidate, so only the
    // ancestor chain's subtree sizes (and the old parent's children list)
    // change; `tree_dirty` is that chain under the new ids.
    let mut tree_dirty = Vec::new();
    let mut x = tree.parent[removed.index()];
    while let Some(a) = x {
        tree_dirty.push(phi(a));
        x = tree.parent[a.index()];
    }
    tree_dirty.sort_unstable();
    let edge_dirty: Vec<VertexId> = old_graph
        .neighbors(removed)
        .iter()
        .map(|&w| phi(w))
        .collect();
    verified_plan(
        DeltaClass::VertexSetChange,
        repaired,
        Some(removed),
        tree_dirty,
        edge_dirty,
        new_graph,
    )
}

/// Finishes an edge/arrival plan: diffs the repaired tree against the
/// resident one for the tree-dirty set, then verifies and packages it.
fn incremental_plan(
    planned: DeltaClass,
    repaired: GlobalTree,
    removed: Option<VertexId>,
    edge_dirty: Vec<VertexId>,
    new_graph: &Graph,
    old_tree: &GlobalTree,
) -> DeltaPlan {
    let tree_dirty = tree_changes(old_tree, &repaired);
    verified_plan(
        planned, repaired, removed, tree_dirty, edge_dirty, new_graph,
    )
}

/// The oracle-grade gate: the staged repair must equal a from-scratch
/// [`model_bfs`] of the mutated graph field-for-field, or the plan is
/// rejected and the delta takes the (always-correct) full path.
fn verified_plan(
    planned: DeltaClass,
    repaired: GlobalTree,
    removed: Option<VertexId>,
    tree_dirty: Vec<VertexId>,
    edge_dirty: Vec<VertexId>,
    new_graph: &Graph,
) -> DeltaPlan {
    match model_bfs(new_graph, repaired.root) {
        Some(model) if same_tree(&repaired, &model) => {}
        _ => return DeltaPlan::full(planned, FullCause::PlanRejected),
    }
    // The measured class must match the prediction (a `TreePreserving`
    // plan with tree changes, or vice versa, is a planner bug).
    let measured = if planned == DeltaClass::VertexSetChange {
        DeltaClass::VertexSetChange
    } else if tree_dirty.is_empty() {
        DeltaClass::TreePreserving
    } else {
        DeltaClass::TreeRepairable
    };
    if measured != planned {
        return DeltaPlan::full(planned, FullCause::PlanRejected);
    }
    DeltaPlan {
        planned,
        action: PlanAction::Incremental(Box::new(RepairPlan {
            class: measured,
            tree: repaired,
            removed,
            tree_dirty,
            edge_dirty,
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::run_setup;
    use congest_sim::SimConfig;
    use planar_lib::gen;

    /// The host-side model must reproduce the distributed setup's tree
    /// field-for-field: same root (maximum id), same min-id parents, same
    /// sorted children, same depths and subtree sizes. This pins the
    /// kernel semantics the whole planner is built on.
    #[test]
    fn model_bfs_matches_distributed_setup() {
        let families: Vec<(&str, Graph)> = vec![
            ("grid", gen::grid(5, 6)),
            ("triangulated-grid", gen::triangulated_grid(4, 4)),
            ("wheel", gen::wheel(12)),
            ("path", gen::path(9)),
            ("cycle", gen::cycle(11)),
            ("star", gen::star(8)),
            ("k4-subdivided", gen::k4_subdivided(3)),
            ("theta", gen::theta(3, 4)),
            ("random-planar", gen::random_planar(40, 80, 7)),
            ("random-maximal-planar", gen::random_maximal_planar(24, 3)),
            ("random-tree", gen::random_tree(30, 11)),
        ];
        for (name, g) in families {
            let root = VertexId::from_index(g.vertex_count() - 1);
            let model = model_bfs(&g, root).expect("connected family");
            let (setup, _) = run_setup(&g, &SimConfig::default()).unwrap();
            assert!(
                same_tree(&model, &setup.tree),
                "model tree diverges from the kernel setup tree on {name}"
            );
        }
    }

    #[test]
    fn model_bfs_detects_disconnection() {
        let mut g = gen::path(4);
        g.remove_edge(VertexId(1), VertexId(2)).unwrap();
        assert!(model_bfs(&g, VertexId(3)).is_none());
    }

    #[test]
    fn edge_diff_splits_insertions_and_deletions() {
        let old = gen::cycle(5);
        let mut new = old.clone();
        new.remove_edge(VertexId(0), VertexId(1)).unwrap();
        new.add_edge(VertexId(0), VertexId(2)).unwrap();
        let (ins, del) = edge_diff(&old, &new);
        assert_eq!(ins, vec![EdgeId::new(VertexId(0), VertexId(2))]);
        assert_eq!(del, vec![EdgeId::new(VertexId(0), VertexId(1))]);
    }

    fn setup_tree(g: &Graph) -> GlobalTree {
        run_setup(g, &SimConfig::default()).unwrap().0.tree
    }

    /// Deleting a non-tree edge is planned `TreePreserving` with an empty
    /// tree-dirty set.
    #[test]
    fn non_tree_deletion_is_tree_preserving() {
        let g = gen::grid(4, 4);
        let tree = setup_tree(&g);
        let victim = g
            .edges()
            .find(|e| {
                tree.parent[e.lo().index()] != Some(e.hi())
                    && tree.parent[e.hi().index()] != Some(e.lo())
            })
            .unwrap();
        let mut mutated = g.clone();
        mutated.remove_edge(victim.lo(), victim.hi()).unwrap();
        let plan = plan_edge_delta(&g, &tree, &mutated);
        assert_eq!(plan.planned, DeltaClass::TreePreserving);
        match plan.action {
            PlanAction::Incremental(rp) => {
                assert!(rp.tree_dirty.is_empty());
                assert_eq!(rp.edge_dirty, {
                    let mut e = vec![victim.lo(), victim.hi()];
                    e.sort_unstable();
                    e
                });
            }
            PlanAction::Full(c) => panic!("expected incremental, got full: {c:?}"),
        }
    }

    /// Deleting a tree edge whose child keeps another up-neighbor is
    /// planned `TreeRepairable` and the splice survives verification.
    #[test]
    fn repairable_tree_deletion_is_spliced() {
        let g = gen::grid(4, 4);
        let tree = setup_tree(&g);
        let victim = g
            .edges()
            .find(|e| {
                let (c, p) = if tree.parent[e.lo().index()] == Some(e.hi()) {
                    (e.lo(), e.hi())
                } else if tree.parent[e.hi().index()] == Some(e.lo()) {
                    (e.hi(), e.lo())
                } else {
                    return false;
                };
                let _ = p;
                g.neighbors(c).iter().any(|&w| {
                    tree.depth[w.index()] + 1 == tree.depth[c.index()]
                        && Some(w) != tree.parent[c.index()]
                })
            })
            .expect("a grid has a repairable tree edge");
        let mut mutated = g.clone();
        mutated.remove_edge(victim.lo(), victim.hi()).unwrap();
        let plan = plan_edge_delta(&g, &tree, &mutated);
        assert_eq!(plan.planned, DeltaClass::TreeRepairable);
        assert!(matches!(plan.action, PlanAction::Incremental(_)));
    }

    /// A cycle's deep tree edge has no alternative up-neighbor: fallback.
    #[test]
    fn unrepairable_tree_deletion_falls_back() {
        let g = gen::cycle(5);
        let tree = setup_tree(&g);
        // In C5 rooted at 4, vertex 1 hangs under 0; deleting {0, 1}
        // leaves 1 with only a same-depth neighbor.
        let mut mutated = g.clone();
        mutated.remove_edge(VertexId(0), VertexId(1)).unwrap();
        let plan = plan_edge_delta(&g, &tree, &mutated);
        assert_eq!(plan.planned, DeltaClass::Fallback);
        assert!(matches!(
            plan.action,
            PlanAction::Full(FullCause::TreeChanged)
        ));
    }

    /// A pendant arrival grafts as a leaf under its anchor.
    #[test]
    fn pendant_arrival_is_vertex_set_change() {
        let g = gen::wheel(10);
        let tree = setup_tree(&g);
        let mut mutated = g.clone();
        let fresh = mutated.add_vertex();
        mutated.add_edge(fresh, VertexId(3)).unwrap();
        let plan = plan_arrival(&g, &tree, &mutated);
        assert_eq!(plan.planned, DeltaClass::VertexSetChange);
        match plan.action {
            PlanAction::Incremental(rp) => {
                assert_eq!(rp.tree.parent[fresh.index()], Some(VertexId(3)));
                assert!(rp.tree_dirty.contains(&fresh));
            }
            PlanAction::Full(c) => panic!("expected incremental, got full: {c:?}"),
        }
    }

    /// A leaf departure prunes and renumbers; the plan records `removed`.
    #[test]
    fn leaf_departure_is_vertex_set_change() {
        let g = gen::grid(4, 4);
        let tree = setup_tree(&g);
        let leaf = g
            .vertices()
            .find(|&v| {
                tree.children[v.index()].is_empty() && v != tree.root && {
                    let mut m = g.clone();
                    m.remove_vertex(v).unwrap();
                    m.is_connected()
                }
            })
            .expect("a grid tree has removable leaves");
        let mut mutated = g.clone();
        mutated.remove_vertex(leaf).unwrap();
        let plan = plan_departure(&g, &tree, &mutated, leaf);
        assert_eq!(plan.planned, DeltaClass::VertexSetChange);
        match plan.action {
            PlanAction::Incremental(rp) => {
                assert_eq!(rp.removed, Some(leaf));
                assert_eq!(rp.tree.parent.len(), g.vertex_count() - 1);
            }
            PlanAction::Full(c) => panic!("expected incremental, got full: {c:?}"),
        }
    }

    /// Departure of an internal tree vertex falls back.
    #[test]
    fn internal_departure_falls_back() {
        let g = gen::grid(4, 4);
        let tree = setup_tree(&g);
        let internal = g
            .vertices()
            .find(|&v| {
                !tree.children[v.index()].is_empty() && v != tree.root && {
                    let mut m = g.clone();
                    m.remove_vertex(v).unwrap();
                    m.is_connected()
                }
            })
            .unwrap();
        let mut mutated = g.clone();
        mutated.remove_vertex(internal).unwrap();
        let plan = plan_departure(&g, &tree, &mutated, internal);
        assert_eq!(plan.planned, DeltaClass::Fallback);
        assert!(matches!(
            plan.action,
            PlanAction::Full(FullCause::VertexSetChanged)
        ));
    }

    /// Inserting an edge between same-depth endpoints preserves the tree;
    /// a depth-gap-2 insert falls back.
    #[test]
    fn insert_classification_follows_depth_gap() {
        let g = gen::grid(4, 4);
        let tree = setup_tree(&g);
        let depth = |v: VertexId| tree.depth[v.index()];
        let mut same_level = None;
        let mut wide_gap = None;
        for u in g.vertices() {
            for v in g.vertices() {
                if u < v && !g.has_edge(u, v) {
                    if depth(u) == depth(v) && same_level.is_none() {
                        same_level = Some((u, v));
                    }
                    if depth(u).abs_diff(depth(v)) >= 2 && wide_gap.is_none() {
                        wide_gap = Some((u, v));
                    }
                }
            }
        }
        let (u, v) = same_level.expect("grid has same-depth non-edges");
        let mut mutated = g.clone();
        mutated.add_edge(u, v).unwrap();
        let plan = plan_edge_delta(&g, &tree, &mutated);
        assert_eq!(plan.planned, DeltaClass::TreePreserving);
        assert!(matches!(plan.action, PlanAction::Incremental(_)));

        let (u, v) = wide_gap.expect("grid has wide-gap non-edges");
        let mut mutated = g.clone();
        mutated.add_edge(u, v).unwrap();
        let plan = plan_edge_delta(&g, &tree, &mutated);
        assert_eq!(plan.planned, DeltaClass::Fallback);
    }

    /// Class codes are stable and distinct (JSON consumers rely on them).
    #[test]
    fn class_codes_are_distinct() {
        let codes: Vec<&str> = DeltaClass::ALL.iter().map(|c| c.code()).collect();
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(codes.len(), dedup.len());
        assert_eq!(DeltaClass::TreePreserving.to_string(), "tree-preserving");
    }
}
