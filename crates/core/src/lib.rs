//! # planar-embedding
//!
//! A reproduction of **"Distributed Algorithms for Planar Networks I:
//! Planar Embedding"** (Ghaffari & Haeupler, PODC 2016): a deterministic
//! distributed algorithm that computes a combinatorial planar embedding —
//! each node learns the clockwise cyclic order of its incident edges — in
//! `O(D · min{log n, D})` CONGEST rounds on any planar network with `n`
//! nodes and diameter `D`.
//!
//! ## Crate layout (mirrors the paper)
//!
//! * [`setup`] — the `O(D)` preliminaries: max-id leader election, BFS tree,
//!   subtree sizes, `n` and a 2-approximate diameter (Section 2).
//! * [`parts`] — the partition framework and the safety property
//!   (Section 3, Definition 3.1).
//! * [`interface`] — interfaces of parts, their biconnected-decomposition
//!   characterization, and an exhaustive oracle validating Observation 3.2.
//! * [`partition`] — the recursive BFS-subtree/centroid-path partition
//!   (Section 4, Lemmas 4.1–4.3).
//! * [`symmetry`] — the O(1)-round symmetry breaking of Lemma 5.3.
//! * [`patterns`] — the Section 5.2 merge patterns (pairwise, star,
//!   vertex-coordinated) as standalone, individually costed operations.
//! * [`merge`] — the unrestricted path-coordinated merge, step by step per
//!   Section 5.3.
//! * [`neighborhood`] — O(1)-round neighborhood learning on
//!   everywhere-sparse graphs (the Section 7.1.3 substitute) and
//!   degeneracy orientations.
//! * [`ruling`] — the log* extension: a deterministic ruling edge set
//!   (independent in `L(G)`, dominating in `L(G)^2`) via Cole-Vishkin.
//! * [`resilience`] — fault-tolerance policy: reliable-delivery budget
//!   widening, watchdog policy, and the [`EmbedError::Degraded`]
//!   degradation semantics for runs under injected faults.
//! * [`outcome`] — terminal-outcome classification ([`OutcomeClass`]) and
//!   the allowed-terminal lattice the DST shadow oracles (`crates/dst`)
//!   compare runs against.
//! * [`ExecutionContext`] — the typed execution context every phase runs
//!   through: one kernel session per graph, kernel selection
//!   ([`Kernel`]), reliable delivery, the phase-attributed round tally,
//!   and batched execution of vertex-disjoint subproblem instances.
//!   [`Scheduler`] picks level-synchronous (default) or sequential
//!   recursion — bit-identical outputs, very different host cost.
//! * [`embed_distributed`] — the end-to-end algorithm (Theorem 1.1).
//! * [`embed_baseline`] — the trivial `O(n)` gather-everything baseline
//!   (footnote 2), the comparison point for all benchmarks.
//! * [`verify_embedding`] / [`is_planar_distributed`] — output validation
//!   and the planarity-test view of the algorithm.
//!
//! ## Example
//!
//! ```
//! use planar_embedding::{embed_distributed, EmbedderConfig};
//! use planar_lib::gen;
//!
//! # fn main() -> Result<(), planar_embedding::EmbedError> {
//! let network = gen::grid(6, 8);
//! let outcome = embed_distributed(&network, &EmbedderConfig::default())?;
//!
//! // The output is a genus-0 rotation system of the input network.
//! assert!(outcome.rotation.is_planar_embedding());
//!
//! // The measured CONGEST cost: rounds, messages, congestion.
//! println!("{}", outcome.metrics);
//!
//! // Structural validation of the paper's lemmas comes for free.
//! assert!(outcome.stats.max_child_ratio() <= 2.0 / 3.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baseline;
pub mod certify;
mod driver;
mod error;
mod exec;
pub mod incremental;
pub mod interface;
pub mod merge;
pub mod neighborhood;
pub mod outcome;
pub mod partition;
pub mod parts;
pub mod patterns;
pub mod planner;
pub mod resilience;
pub mod ruling;
pub mod setup;
pub mod stats;
pub mod symmetry;
pub mod tree;
mod verify;

pub use baseline::embed_baseline;
pub use certify::{
    certify_embedding, certify_surviving_embedding, certify_with_certificates, Certification,
};
pub use congest_sim::protocols::ReliableConfig;
pub use driver::{
    embed_distributed, embed_recursion, embed_recursion_with_memory, EmbedderConfig,
    EmbeddingOutcome,
};
pub use error::{DegradedCause, EmbedError};
pub use exec::{ExecutionContext, Kernel, Scheduler};
pub use incremental::{FullCause, ReembedPath, ReembedReport, ResidentEmbedding};
pub use outcome::{degraded_fingerprint, OutcomeClass};
pub use planner::DeltaClass;
pub use stats::{LevelStats, MergeStats, RecursionStats};
pub use verify::{is_planar_distributed, verify_embedding, verify_surviving_embedding};
