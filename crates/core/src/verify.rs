//! Output verification for downstream users: check that a rotation system
//! is a valid combinatorial planar embedding of a given network.

use planar_graph::{Graph, RotationSystem, VertexId};

use crate::error::EmbedError;

/// Verifies that `rotation` is a combinatorial planar embedding of `g`:
///
/// 1. the per-vertex orders are permutations of the actual neighbor sets;
/// 2. the traced surface has Euler genus 0 on every component (Edmonds'
///    criterion, the paper's \[Edm60\] equivalence).
///
/// # Errors
///
/// * [`EmbedError::Graph`] if the rotation does not match `g`'s adjacency;
/// * [`EmbedError::NonPlanar`] if the rotation has positive genus.
///
/// # Example
///
/// ```
/// use planar_embedding::{embed_distributed, verify_embedding, EmbedderConfig};
/// use planar_lib::gen;
///
/// # fn main() -> Result<(), planar_embedding::EmbedError> {
/// let g = gen::wheel(8);
/// let out = embed_distributed(&g, &EmbedderConfig::default())?;
/// verify_embedding(&g, &out.rotation)?;
/// # Ok(())
/// # }
/// ```
pub fn verify_embedding(g: &Graph, rotation: &RotationSystem) -> Result<(), EmbedError> {
    // Revalidate against the graph (catches mismatched vertex counts and
    // neighbor sets).
    let orders: Vec<_> = (0..rotation.vertex_count())
        .map(|v| {
            rotation
                .order_at(planar_graph::VertexId::from_index(v))
                .to_vec()
        })
        .collect();
    let revalidated = RotationSystem::new(g, orders).map_err(EmbedError::Graph)?;
    if revalidated.is_planar_embedding() {
        Ok(())
    } else {
        Err(EmbedError::NonPlanar)
    }
}

/// Verifies a rotation system against the subgraph of `g` induced by the
/// vertices *not* in `crashed` — the post-run self-check of fault-mode
/// embedding runs ([`EmbedError::Degraded`] semantics).
///
/// The surviving vertices are compacted to `0..k` (in increasing original
/// id), each survivor's cyclic order is restricted to surviving neighbors
/// (restriction of a planar rotation to an induced subgraph preserves
/// genus 0), and the result is checked exactly as [`verify_embedding`].
/// With `crashed` empty this *is* [`verify_embedding`].
///
/// # Errors
///
/// * [`EmbedError::Graph`] if the restricted rotation does not match the
///   induced subgraph's adjacency;
/// * [`EmbedError::NonPlanar`] if the restricted rotation has positive
///   genus.
pub fn verify_surviving_embedding(
    g: &Graph,
    rotation: &RotationSystem,
    crashed: &[VertexId],
) -> Result<(), EmbedError> {
    if crashed.is_empty() {
        return verify_embedding(g, rotation);
    }
    let n = g.vertex_count();
    let mut alive = vec![true; n];
    for &v in crashed {
        if v.index() < n {
            alive[v.index()] = false;
        }
    }
    // Compact surviving ids.
    let mut remap = vec![usize::MAX; n];
    let mut survivors = Vec::new();
    for v in 0..n {
        if alive[v] {
            remap[v] = survivors.len();
            survivors.push(v);
        }
    }
    // Induced subgraph and the restricted rotation orders.
    let mut edges = Vec::new();
    for v in g.vertices() {
        if !alive[v.index()] {
            continue;
        }
        for &w in g.neighbors(v) {
            if alive[w.index()] && v.0 < w.0 {
                edges.push((remap[v.index()] as u32, remap[w.index()] as u32));
            }
        }
    }
    let sub = Graph::from_edges(survivors.len(), edges).map_err(EmbedError::Graph)?;
    let orders: Vec<Vec<VertexId>> = survivors
        .iter()
        .map(|&v| {
            rotation
                .order_at(VertexId::from_index(v))
                .iter()
                .filter(|w| alive[w.index()])
                .map(|w| VertexId::from_index(remap[w.index()]))
                .collect()
        })
        .collect();
    let restricted = RotationSystem::new(&sub, orders).map_err(EmbedError::Graph)?;
    if restricted.is_planar_embedding() {
        Ok(())
    } else {
        Err(EmbedError::NonPlanar)
    }
}

/// Distributed planarity *test*: runs the embedding algorithm and reports
/// whether the network is planar, rather than failing on non-planar inputs.
///
/// # Errors
///
/// Only structural errors remain errors ([`EmbedError::Disconnected`],
/// [`EmbedError::EmptyGraph`], internal failures); non-planarity is a
/// regular `Ok(false)`.
///
/// # Example
///
/// ```
/// use planar_embedding::{is_planar_distributed, EmbedderConfig};
/// use planar_lib::gen;
///
/// # fn main() -> Result<(), planar_embedding::EmbedError> {
/// assert!(is_planar_distributed(&gen::grid(4, 4), &EmbedderConfig::default())?);
/// assert!(!is_planar_distributed(&gen::complete(5), &EmbedderConfig::default())?);
/// # Ok(())
/// # }
/// ```
pub fn is_planar_distributed(g: &Graph, cfg: &crate::EmbedderConfig) -> Result<bool, EmbedError> {
    match crate::embed_distributed(g, cfg) {
        Ok(_) => Ok(true),
        Err(EmbedError::NonPlanar) => Ok(false),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{embed_distributed, EmbedderConfig};
    use planar_lib::gen;

    #[test]
    fn accepts_algorithm_output() {
        let g = gen::random_maximal_planar(20, 4);
        let out = embed_distributed(&g, &EmbedderConfig::default()).unwrap();
        verify_embedding(&g, &out.rotation).unwrap();
    }

    #[test]
    fn rejects_mismatched_graph() {
        let g = gen::cycle(6);
        let other = gen::path(6);
        let out = embed_distributed(&g, &EmbedderConfig::default()).unwrap();
        assert!(matches!(
            verify_embedding(&other, &out.rotation),
            Err(EmbedError::Graph(_))
        ));
    }

    #[test]
    fn rejects_nonplanar_rotation() {
        // The sorted-default rotation of K4 has genus 1.
        let g = gen::complete(4);
        let bad = RotationSystem::sorted_default(&g);
        assert!(matches!(
            verify_embedding(&g, &bad),
            Err(EmbedError::NonPlanar)
        ));
    }

    #[test]
    fn planarity_test_semantics() {
        let cfg = EmbedderConfig::default();
        assert!(is_planar_distributed(&gen::theta(3, 4), &cfg).unwrap());
        assert!(!is_planar_distributed(&gen::complete(6), &cfg).unwrap());
        assert!(
            is_planar_distributed(&Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap(), &cfg).is_err()
        );
    }
}
