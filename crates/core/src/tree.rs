//! The global BFS tree the algorithm is organized around (Section 4: "We
//! then compute a BFS `T` rooted at this vertex and we work with this BFS
//! throughout the algorithm").

use planar_graph::VertexId;

/// The global BFS tree, as assembled from the distributed setup phase's
/// per-node outputs (parent pointers, children lists, depths, subtree
/// sizes).
#[derive(Clone, Debug)]
pub struct GlobalTree {
    /// The elected root `s*` (maximum-id vertex).
    pub root: VertexId,
    /// BFS parent of each vertex (`None` at the root).
    pub parent: Vec<Option<VertexId>>,
    /// BFS children of each vertex.
    pub children: Vec<Vec<VertexId>>,
    /// Hop distance from the root.
    pub depth: Vec<u32>,
    /// Size of the subtree rooted at each vertex.
    pub subtree_size: Vec<u64>,
}

impl GlobalTree {
    /// All vertices of the subtree rooted at `v`, in preorder.
    pub fn subtree_members(&self, v: VertexId) -> Vec<VertexId> {
        let mut out = Vec::new();
        let mut stack = vec![v];
        while let Some(x) = stack.pop() {
            out.push(x);
            for &c in &self.children[x.index()] {
                stack.push(c);
            }
        }
        out
    }

    /// Depth of the subtree rooted at `v` (0 for a leaf), i.e. the longest
    /// root-to-leaf tree distance within the subtree.
    pub fn subtree_depth(&self, v: VertexId) -> u32 {
        let base = self.depth[v.index()];
        self.subtree_members(v)
            .iter()
            .map(|&x| self.depth[x.index()] - base)
            .max()
            .unwrap_or(0)
    }

    /// The unique tree path from `a` to `b` (inclusive), via their lowest
    /// common ancestor.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` are in different trees (cannot happen for a
    /// connected network).
    pub fn tree_path(&self, a: VertexId, b: VertexId) -> Vec<VertexId> {
        let mut up_a = vec![a];
        let mut up_b = vec![b];
        let (mut x, mut y) = (a, b);
        while self.depth[x.index()] > self.depth[y.index()] {
            x = self.parent[x.index()].expect("deeper vertex has a parent");
            up_a.push(x);
        }
        while self.depth[y.index()] > self.depth[x.index()] {
            y = self.parent[y.index()].expect("deeper vertex has a parent");
            up_b.push(y);
        }
        while x != y {
            x = self.parent[x.index()].expect("vertices share a root");
            y = self.parent[y.index()].expect("vertices share a root");
            up_a.push(x);
            up_b.push(y);
        }
        // up_a ends at the LCA; up_b ends at the LCA too.
        up_b.pop();
        up_b.reverse();
        up_a.extend(up_b);
        up_a
    }

    /// The path from `v` up to its ancestor `anc` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `anc` is not an ancestor of `v`.
    pub fn path_to_ancestor(&self, v: VertexId, anc: VertexId) -> Vec<VertexId> {
        let mut path = vec![v];
        let mut cur = v;
        while cur != anc {
            cur = self.parent[cur.index()].expect("anc must be an ancestor");
            path.push(cur);
        }
        path
    }

    /// Depth of the whole tree.
    pub fn tree_depth(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the tree for a path 0-1-2-3-4 rooted at 4.
    fn path_tree() -> GlobalTree {
        GlobalTree {
            root: VertexId(4),
            parent: vec![
                Some(VertexId(1)),
                Some(VertexId(2)),
                Some(VertexId(3)),
                Some(VertexId(4)),
                None,
            ],
            children: vec![
                vec![],
                vec![VertexId(0)],
                vec![VertexId(1)],
                vec![VertexId(2)],
                vec![VertexId(3)],
            ],
            depth: vec![4, 3, 2, 1, 0],
            subtree_size: vec![1, 2, 3, 4, 5],
        }
    }

    #[test]
    fn subtree_members_and_depth() {
        let t = path_tree();
        let mut members = t.subtree_members(VertexId(2));
        members.sort();
        assert_eq!(members, vec![VertexId(0), VertexId(1), VertexId(2)]);
        assert_eq!(t.subtree_depth(VertexId(2)), 2);
        assert_eq!(t.subtree_depth(VertexId(0)), 0);
        assert_eq!(t.tree_depth(), 4);
    }

    #[test]
    fn tree_path_through_lca() {
        let t = path_tree();
        assert_eq!(
            t.tree_path(VertexId(0), VertexId(3)),
            vec![VertexId(0), VertexId(1), VertexId(2), VertexId(3)]
        );
        assert_eq!(t.tree_path(VertexId(2), VertexId(2)), vec![VertexId(2)]);
        assert_eq!(
            t.tree_path(VertexId(3), VertexId(1)),
            vec![VertexId(3), VertexId(2), VertexId(1)]
        );
    }

    #[test]
    fn path_to_ancestor_works() {
        let t = path_tree();
        assert_eq!(
            t.path_to_ancestor(VertexId(0), VertexId(2)),
            vec![VertexId(0), VertexId(1), VertexId(2)]
        );
    }
}
