//! The global BFS tree the algorithm is organized around (Section 4: "We
//! then compute a BFS `T` rooted at this vertex and we work with this BFS
//! throughout the algorithm").

use planar_graph::VertexId;

/// The global BFS tree, as assembled from the distributed setup phase's
/// per-node outputs (parent pointers, children lists, depths, subtree
/// sizes).
#[derive(Clone, Debug)]
pub struct GlobalTree {
    /// The root `s*` — the maximum-id vertex elected by the distributed
    /// setup. (A resident embedding's tree keeps the root of its last
    /// full build across incremental repairs; see `crate::planner`.)
    pub root: VertexId,
    /// BFS parent of each vertex (`None` at the root).
    pub parent: Vec<Option<VertexId>>,
    /// BFS children of each vertex.
    pub children: Vec<Vec<VertexId>>,
    /// Hop distance from the root.
    pub depth: Vec<u32>,
    /// Size of the subtree rooted at each vertex.
    pub subtree_size: Vec<u64>,
}

impl GlobalTree {
    /// All vertices of the subtree rooted at `v`, in preorder.
    pub fn subtree_members(&self, v: VertexId) -> Vec<VertexId> {
        let mut out = Vec::new();
        let mut stack = vec![v];
        while let Some(x) = stack.pop() {
            out.push(x);
            for &c in &self.children[x.index()] {
                stack.push(c);
            }
        }
        out
    }

    /// Depth of the subtree rooted at `v` (0 for a leaf), i.e. the longest
    /// root-to-leaf tree distance within the subtree.
    pub fn subtree_depth(&self, v: VertexId) -> u32 {
        let base = self.depth[v.index()];
        self.subtree_members(v)
            .iter()
            .map(|&x| self.depth[x.index()] - base)
            .max()
            .unwrap_or(0)
    }

    /// The unique tree path from `a` to `b` (inclusive), via their lowest
    /// common ancestor.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` are in different trees (cannot happen for a
    /// connected network).
    pub fn tree_path(&self, a: VertexId, b: VertexId) -> Vec<VertexId> {
        let mut up_a = vec![a];
        let mut up_b = vec![b];
        let (mut x, mut y) = (a, b);
        while self.depth[x.index()] > self.depth[y.index()] {
            x = self.parent[x.index()].expect("deeper vertex has a parent");
            up_a.push(x);
        }
        while self.depth[y.index()] > self.depth[x.index()] {
            y = self.parent[y.index()].expect("deeper vertex has a parent");
            up_b.push(y);
        }
        while x != y {
            x = self.parent[x.index()].expect("vertices share a root");
            y = self.parent[y.index()].expect("vertices share a root");
            up_a.push(x);
            up_b.push(y);
        }
        // up_a ends at the LCA; up_b ends at the LCA too.
        up_b.pop();
        up_b.reverse();
        up_a.extend(up_b);
        up_a
    }

    /// The path from `v` up to its ancestor `anc` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `anc` is not an ancestor of `v`.
    pub fn path_to_ancestor(&self, v: VertexId, anc: VertexId) -> Vec<VertexId> {
        let mut path = vec![v];
        let mut cur = v;
        while cur != anc {
            cur = self.parent[cur.index()].expect("anc must be an ancestor");
            path.push(cur);
        }
        path
    }

    /// Depth of the whole tree.
    pub fn tree_depth(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Re-hangs `c` under `new_parent`, which must sit at the same depth
    /// as `c`'s current parent so every BFS distance stays intact. This is
    /// the tree-repair splice of the incremental delta planner: `c` keeps
    /// its whole subtree, only the parent pointer, the two children lists
    /// and the subtree sizes along the two ancestor chains change.
    ///
    /// # Panics
    ///
    /// Panics if `c` has no parent (it is the root) or is already a child
    /// of `new_parent`; debug-asserts the equal-depth contract.
    pub fn splice_reparent(&mut self, c: VertexId, new_parent: VertexId) {
        let old_parent = self.parent[c.index()].expect("spliced vertex has a parent");
        debug_assert_eq!(
            self.depth[old_parent.index()],
            self.depth[new_parent.index()],
            "splice_reparent must preserve BFS depths"
        );
        let siblings = &mut self.children[old_parent.index()];
        let pos = siblings
            .iter()
            .position(|&x| x == c)
            .expect("child listed under its parent");
        siblings.remove(pos);
        let siblings = &mut self.children[new_parent.index()];
        let pos = siblings
            .binary_search(&c)
            .expect_err("not already a child of the new parent");
        siblings.insert(pos, c);
        self.parent[c.index()] = Some(new_parent);
        // Subtree sizes move with `c`: subtract along the old ancestor
        // chain, add along the new one (the shared segment above the LCA
        // nets out).
        let moved = self.subtree_size[c.index()];
        let mut x = Some(old_parent);
        while let Some(a) = x {
            self.subtree_size[a.index()] -= moved;
            x = self.parent[a.index()];
        }
        let mut x = Some(new_parent);
        while let Some(a) = x {
            self.subtree_size[a.index()] += moved;
            x = self.parent[a.index()];
        }
    }

    /// Grafts a fresh leaf with the next vertex id (`n`, the id a
    /// [`planar_graph::Graph::add_vertex`] arrival receives) under
    /// `parent`, returning the new id. The new id is the maximum, so
    /// appending it to `parent`'s sorted children list keeps the list
    /// sorted — exactly where the deterministic kernel would place it.
    pub fn graft_leaf(&mut self, parent: VertexId) -> VertexId {
        let fresh = VertexId::from_index(self.parent.len());
        self.parent.push(Some(parent));
        self.children.push(Vec::new());
        self.depth.push(self.depth[parent.index()] + 1);
        self.subtree_size.push(1);
        self.children[parent.index()].push(fresh);
        let mut x = Some(parent);
        while let Some(a) = x {
            self.subtree_size[a.index()] += 1;
            x = self.parent[a.index()];
        }
        fresh
    }

    /// Removes the tree leaf `v` and renumbers every id above it down by
    /// one — the same monotone compaction
    /// [`planar_graph::Graph::remove_vertex`] applies — returning the
    /// pruned tree. Monotone renumbering preserves id order, so sorted
    /// children lists and min-id parent tie-breaks survive verbatim.
    ///
    /// # Panics
    ///
    /// Panics if `v` still has children or is the root.
    pub fn prune_leaf_renumbered(&self, v: VertexId) -> GlobalTree {
        assert!(
            self.children[v.index()].is_empty(),
            "pruned vertex must be a tree leaf"
        );
        assert_ne!(v, self.root, "cannot prune the root");
        let phi = |x: VertexId| {
            if x > v {
                VertexId(x.0 - 1)
            } else {
                x
            }
        };
        let n = self.parent.len();
        let mut parent = Vec::with_capacity(n - 1);
        let mut children = Vec::with_capacity(n - 1);
        let mut depth = Vec::with_capacity(n - 1);
        let mut subtree_size = Vec::with_capacity(n - 1);
        for i in 0..n {
            if i == v.index() {
                continue;
            }
            parent.push(self.parent[i].map(phi));
            children.push(
                self.children[i]
                    .iter()
                    .copied()
                    .filter(|&c| c != v)
                    .map(phi)
                    .collect(),
            );
            depth.push(self.depth[i]);
            subtree_size.push(self.subtree_size[i]);
        }
        let mut out = GlobalTree {
            root: phi(self.root),
            parent,
            children,
            depth,
            subtree_size,
        };
        let mut x = self.parent[v.index()];
        while let Some(a) = x {
            out.subtree_size[phi(a).index()] -= 1;
            x = self.parent[a.index()];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the tree for a path 0-1-2-3-4 rooted at 4.
    fn path_tree() -> GlobalTree {
        GlobalTree {
            root: VertexId(4),
            parent: vec![
                Some(VertexId(1)),
                Some(VertexId(2)),
                Some(VertexId(3)),
                Some(VertexId(4)),
                None,
            ],
            children: vec![
                vec![],
                vec![VertexId(0)],
                vec![VertexId(1)],
                vec![VertexId(2)],
                vec![VertexId(3)],
            ],
            depth: vec![4, 3, 2, 1, 0],
            subtree_size: vec![1, 2, 3, 4, 5],
        }
    }

    #[test]
    fn subtree_members_and_depth() {
        let t = path_tree();
        let mut members = t.subtree_members(VertexId(2));
        members.sort();
        assert_eq!(members, vec![VertexId(0), VertexId(1), VertexId(2)]);
        assert_eq!(t.subtree_depth(VertexId(2)), 2);
        assert_eq!(t.subtree_depth(VertexId(0)), 0);
        assert_eq!(t.tree_depth(), 4);
    }

    #[test]
    fn tree_path_through_lca() {
        let t = path_tree();
        assert_eq!(
            t.tree_path(VertexId(0), VertexId(3)),
            vec![VertexId(0), VertexId(1), VertexId(2), VertexId(3)]
        );
        assert_eq!(t.tree_path(VertexId(2), VertexId(2)), vec![VertexId(2)]);
        assert_eq!(
            t.tree_path(VertexId(3), VertexId(1)),
            vec![VertexId(3), VertexId(2), VertexId(1)]
        );
    }

    #[test]
    fn path_to_ancestor_works() {
        let t = path_tree();
        assert_eq!(
            t.path_to_ancestor(VertexId(0), VertexId(2)),
            vec![VertexId(0), VertexId(1), VertexId(2)]
        );
    }

    /// A star rooted at 4 with two depth-1 spokes, one carrying a chain.
    fn branchy_tree() -> GlobalTree {
        // 4 is the root; 1 and 3 at depth 1; 0 under 1; 2 under 0.
        GlobalTree {
            root: VertexId(4),
            parent: vec![
                Some(VertexId(1)),
                Some(VertexId(4)),
                Some(VertexId(0)),
                Some(VertexId(4)),
                None,
            ],
            children: vec![
                vec![VertexId(2)],
                vec![VertexId(0)],
                vec![],
                vec![],
                vec![VertexId(1), VertexId(3)],
            ],
            depth: vec![2, 1, 3, 1, 0],
            subtree_size: vec![2, 3, 1, 1, 5],
        }
    }

    #[test]
    fn splice_reparent_moves_subtree_sizes() {
        let mut t = branchy_tree();
        // Re-hang 0 (subtree {0, 2}) from parent 1 to parent 3.
        t.splice_reparent(VertexId(0), VertexId(3));
        assert_eq!(t.parent[0], Some(VertexId(3)));
        assert_eq!(t.children[1], Vec::<VertexId>::new());
        assert_eq!(t.children[3], vec![VertexId(0)]);
        assert_eq!(t.subtree_size, vec![2, 1, 1, 3, 5]);
        assert_eq!(t.depth, vec![2, 1, 3, 1, 0]);
    }

    #[test]
    fn graft_leaf_appends_the_next_id() {
        let mut t = branchy_tree();
        let fresh = t.graft_leaf(VertexId(1));
        assert_eq!(fresh, VertexId(5));
        assert_eq!(t.parent[5], Some(VertexId(1)));
        assert_eq!(t.depth[5], 2);
        assert_eq!(t.children[1], vec![VertexId(0), VertexId(5)]);
        assert_eq!(t.subtree_size, vec![2, 4, 1, 1, 6, 1]);
    }

    #[test]
    fn prune_leaf_renumbers_monotonically() {
        let t = branchy_tree();
        let pruned = t.prune_leaf_renumbered(VertexId(2));
        // Ids above 2 shift down: 3 -> 2, 4 -> 3.
        assert_eq!(pruned.root, VertexId(3));
        assert_eq!(
            pruned.parent,
            vec![
                Some(VertexId(1)),
                Some(VertexId(3)),
                Some(VertexId(3)),
                None
            ]
        );
        assert_eq!(pruned.children[3], vec![VertexId(1), VertexId(2)]);
        assert_eq!(pruned.children[0], Vec::<VertexId>::new());
        assert_eq!(pruned.depth, vec![2, 1, 1, 0]);
        assert_eq!(pruned.subtree_size, vec![1, 2, 1, 4]);
    }
}
