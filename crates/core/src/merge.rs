//! The merge phase (Section 5): combining the parts `P_0, P_1, ..., P_k` of
//! one recursion node into a single embedded part, following the
//! *unrestricted path-coordinated merge* algorithm of Section 5.3 step by
//! step.
//!
//! Structure (numbers match the paper's algorithm):
//!
//! 1. number the `P_0` vertices;
//! 2. two iterations of { (a) low-connection computation, (b)
//!    vertex-coordinated merges per coordinator, (c)/(d) retirement of
//!    single-connection parts, (e) coordinator copy split-off, (f) Lemma 5.3
//!    symmetry breaking on the inter-part graph, (g)/(h) star merges, (i)
//!    setting aside long monotone paths };
//!
//! 3.–5. two-connection parts: local embedding, delivery of orders, and
//! the keep-highest-ID rule;
//! 6. the restricted path-coordinated merge with `P_0` as coordinator.
//!
//! **Simulation strategy** (DESIGN.md §1): the *control flow* above runs
//! exactly as written, with every data movement charged — kernel rounds for
//! the symmetry breaking, packet-scheduled transfers for summaries and
//! order deliveries, and `O(part diameter)` housekeeping per merge event
//! (Remark 1's upcast/downcast simulation). The *embedding content* of each
//! merged part is computed by the coordinator-side skeleton solver
//! ([`planar_lib::embed_pinned`]); per Observation 3.2 the charged summaries
//! carry exactly the information that solver needs.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use congest_sim::routing::{schedule, Transfer};
use congest_sim::{Metrics, Phase, PhaseRounds, SimConfig};
use planar_graph::{Graph, VertexId};

use crate::error::EmbedError;
use crate::exec::ExecutionContext;
use crate::parts::{summary_words, verify_part, PartState};
use crate::stats::MergeStats;
use crate::symmetry::symmetry_break_ctx;

/// Result of merging one recursion node.
#[derive(Clone, Debug)]
pub struct MergeOutcome {
    /// The merged part covering the whole subproblem `H`.
    pub part: PartState,
    /// Total charged cost of the merge.
    pub metrics: Metrics,
    /// Structural statistics (validates the `O(D)` part-count argument).
    pub stats: MergeStats,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Active,
    Paused,
    Retired,
}

struct MergeCtx<'a, 'g> {
    exec: &'a mut ExecutionContext<'g>,
    g: &'g Graph,
    p0: Vec<VertexId>,
    p0_pos: HashMap<VertexId, usize>,
    h_set: HashSet<VertexId>,
    parts: Vec<PartState>,
    status: Vec<Status>,
    part_of: HashMap<VertexId, usize>,
    check: bool,
    metrics: Metrics,
    stats: MergeStats,
}

/// Merges `P_0` with the hanging parts into one part covering the whole
/// subproblem.
///
/// # Errors
///
/// * [`EmbedError::NonPlanar`] if a merge has no planar completion;
/// * [`EmbedError::Internal`] if a framework invariant (safety, Def. 3.1)
///   fails — this would falsify the paper's Lemma 4.1 and is always a bug.
pub fn merge_parts(
    g: &Graph,
    p0: Vec<VertexId>,
    hanging: Vec<PartState>,
    cfg: &SimConfig,
    check: bool,
) -> Result<MergeOutcome, EmbedError> {
    merge_parts_ctx(&mut ExecutionContext::with_sim(g, cfg), p0, hanging, check)
}

/// [`merge_parts`] against a full [`ExecutionContext`]: the one kernel
/// protocol it runs (the symmetry-breaking step) executes on the context's
/// kernel with its reliability policy; the routed summary movements are
/// charged analytically and need no protection.
///
/// # Errors
///
/// As [`merge_parts`].
pub fn merge_parts_ctx(
    exec: &mut ExecutionContext<'_>,
    p0: Vec<VertexId>,
    hanging: Vec<PartState>,
    check: bool,
) -> Result<MergeOutcome, EmbedError> {
    let g = exec.graph();
    let mut h_members: Vec<VertexId> = p0.clone();
    for p in &hanging {
        h_members.extend_from_slice(&p.members);
    }
    h_members.sort();
    h_members.dedup();

    let p0_pos: HashMap<VertexId, usize> = p0.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let h_set: HashSet<VertexId> = h_members.iter().copied().collect();
    let mut part_of = HashMap::new();
    for (i, p) in hanging.iter().enumerate() {
        for &v in &p.members {
            part_of.insert(v, i);
        }
    }
    let mut ctx = MergeCtx {
        exec,
        g,
        p0,
        p0_pos,
        h_set,
        status: vec![Status::Active; hanging.len()],
        parts: hanging,
        part_of,
        check,
        metrics: Metrics::new(),
        stats: MergeStats::default(),
    };
    ctx.stats.subtree_size = h_members.len();
    ctx.stats.p0_len = ctx.p0.len();
    ctx.stats.initial_parts = ctx.parts.len();

    // Step 2: two functionally identical iterations.
    for _iteration in 0..2 {
        ctx.step_a_and_b()?; // low connections + vertex-coordinated merges
        ctx.step_c_d()?; // retire single-connection parts
        ctx.step_f_to_i()?; // symmetry breaking + star merges + pausing
    }
    ctx.steps_3_to_5()?; // two-connection parts
    let part = ctx.step_6(&h_members)?; // restricted path-coordinated merge

    // Attribute every round not already claimed by the symmetry-breaking
    // sub-step to the merge phase, so the breakdown sums to `rounds`.
    let mut metrics = ctx.metrics;
    metrics.phase_rounds.merge = metrics.rounds - metrics.phase_rounds.symmetry;

    Ok(MergeOutcome {
        part,
        metrics,
        stats: ctx.stats,
    })
}

impl MergeCtx<'_, '_> {
    /// Indices of the `P_0` vertices a part connects to.
    fn connections(&self, idx: usize) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for &v in &self.parts[idx].members {
            for &w in self.g.neighbors(v) {
                if let Some(&pos) = self.p0_pos.get(&w) {
                    out.insert(pos);
                }
            }
        }
        out
    }

    /// Indices of other non-retired parts a part shares an edge with.
    fn part_neighbors(&self, idx: usize) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for &v in &self.parts[idx].members {
            for &w in self.g.neighbors(v) {
                if let Some(&j) = self.part_of.get(&w) {
                    if j != idx && self.status[j] != Status::Retired {
                        out.insert(j);
                    }
                }
            }
        }
        out
    }

    /// Whether the part has a half-embedded edge leaving `H` entirely.
    fn has_outside(&self, idx: usize) -> bool {
        self.parts[idx]
            .members
            .iter()
            .any(|&v| self.g.neighbors(v).iter().any(|w| !self.h_set.contains(w)))
    }

    /// The part's attachment vertices adjacent to `P_0` position `pos`.
    fn attachments_to(&self, idx: usize, pos: usize) -> Vec<VertexId> {
        let coord = self.p0[pos];
        self.parts[idx]
            .members
            .iter()
            .copied()
            .filter(|&v| self.g.has_edge(v, coord))
            .collect()
    }

    /// The part's attachment vertices adjacent to any vertex of `targets` —
    /// the *merge-relevant* attachments whose interface structure must be
    /// shipped (the compressed-PQ-tree principle: a merge summary carries
    /// only the degrees of freedom the merge actually touches).
    fn attachments_toward(&self, idx: usize, targets: &HashSet<VertexId>) -> Vec<VertexId> {
        self.parts[idx]
            .members
            .iter()
            .copied()
            .filter(|&v| self.g.neighbors(v).iter().any(|w| targets.contains(w)))
            .collect()
    }

    /// BFS path from `from` to `to` within `allowed ∪ {from, to}`.
    fn path_within(
        &self,
        allowed: &HashSet<VertexId>,
        from: VertexId,
        to: VertexId,
    ) -> Result<Vec<VertexId>, EmbedError> {
        if from == to {
            return Ok(vec![from]);
        }
        let mut pred: HashMap<VertexId, VertexId> = HashMap::new();
        let mut queue = VecDeque::from([from]);
        let mut seen: HashSet<VertexId> = HashSet::from([from]);
        while let Some(v) = queue.pop_front() {
            for &w in self.g.neighbors(v) {
                if w == to {
                    let mut path = vec![to, v];
                    let mut cur = v;
                    while let Some(&p) = pred.get(&cur) {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    return Ok(path);
                }
                if allowed.contains(&w) && seen.insert(w) {
                    pred.insert(w, v);
                    queue.push_back(w);
                }
            }
        }
        Err(EmbedError::Internal(format!(
            "no route from {from} to {to} within part"
        )))
    }

    /// Routing region of a part: its members plus the `P_0` spine (the
    /// coordinator copies of step 2e make the spine usable by every part).
    fn region(&self, idxs: &[usize]) -> HashSet<VertexId> {
        let mut allowed: HashSet<VertexId> = self.p0.iter().copied().collect();
        for &i in idxs {
            allowed.extend(self.parts[i].members.iter().copied());
        }
        allowed
    }

    /// Depth bound of a part's communication region (for Remark 1
    /// housekeeping charges): BFS depth from the leader within the region.
    fn region_depth(&self, idxs: &[usize]) -> usize {
        let allowed = self.region(idxs);
        let leader = self.parts[idxs[0]].leader;
        let mut depth: HashMap<VertexId, usize> = HashMap::from([(leader, 0)]);
        let mut queue = VecDeque::from([leader]);
        let mut max = 0;
        while let Some(v) = queue.pop_front() {
            let d = depth[&v];
            for &w in self.g.neighbors(v) {
                if allowed.contains(&w) && !depth.contains_key(&w) {
                    depth.insert(w, d + 1);
                    max = max.max(d + 1);
                    queue.push_back(w);
                }
            }
        }
        max
    }

    /// Charges the Remark 1 per-part housekeeping: one upcast + one downcast
    /// on the part's BFS tree.
    fn housekeeping(&self, idxs: &[usize]) -> Metrics {
        let size: usize = idxs.iter().map(|&i| self.parts[i].len()).sum();
        Metrics {
            rounds: 2 * self.region_depth(idxs) + 2,
            messages: 2 * size,
            words: 2 * size,
            max_words_edge_round: 1,
            ..Metrics::default()
        }
    }

    /// Merges the given parts (indices) into one; updates `part_of`; retains
    /// the merged part at `idxs[0]` and tombstones the rest.
    fn union_parts(&mut self, idxs: &[usize]) -> Result<usize, EmbedError> {
        debug_assert!(idxs.len() >= 2);
        let refs: Vec<&PartState> = idxs.iter().map(|&i| &self.parts[i]).collect();
        let merged = PartState::union(&refs);
        if self.check {
            verify_part(self.g, &merged.members)?;
        }
        let keep = idxs[0];
        for &v in &merged.members {
            self.part_of.insert(v, keep);
        }
        self.parts[keep] = merged;
        for &i in &idxs[1..] {
            self.parts[i] = PartState::new(vec![self.parts[i].leader]);
            self.parts[i].members.clear(); // tombstone
            self.status[i] = Status::Retired;
        }
        Ok(keep)
    }

    fn active_indices(&self) -> Vec<usize> {
        (0..self.parts.len())
            .filter(|&i| self.status[i] == Status::Active && !self.parts[i].is_empty())
            .collect()
    }

    /// Steps 2a + 2b: per-part low-connection computation, then a
    /// vertex-coordinated merge at every `P_0` vertex.
    fn step_a_and_b(&mut self) -> Result<(), EmbedError> {
        let actives = self.active_indices();
        if actives.is_empty() {
            return Ok(());
        }
        // (a) Each part computes its lowest-numbered P_0 connection:
        // one convergecast + one downcast per part, in parallel.
        let mut step = Metrics::new();
        for &i in &actives {
            step.join_parallel(self.housekeeping(&[i]));
        }
        self.metrics.add(step);

        // (b) Group by low connection; merge connected subsets.
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &i in &actives {
            let low = *self
                .connections(i)
                .iter()
                .next()
                .ok_or_else(|| EmbedError::Internal("part without P_0 connection".into()))?;
            groups.entry(low).or_default().push(i);
        }
        let mut transfers: Vec<Transfer> = Vec::new();
        let mut merges: Vec<Vec<usize>> = Vec::new();
        for (&low, group) in &groups {
            // Connected components of the group under direct part adjacency.
            let group_set: HashSet<usize> = group.iter().copied().collect();
            let mut seen: HashSet<usize> = HashSet::new();
            for &start in group {
                if seen.contains(&start) {
                    continue;
                }
                let mut comp = vec![start];
                seen.insert(start);
                let mut stack = vec![start];
                while let Some(x) = stack.pop() {
                    for nb in self.part_neighbors(x) {
                        if group_set.contains(&nb) && seen.insert(nb) {
                            comp.push(nb);
                            stack.push(nb);
                        }
                    }
                }
                if comp.len() < 2 {
                    continue; // nothing to merge: the lone part stays silent
                }
                // Charge: every component member ships its merge-relevant
                // summary to the coordinator and receives decisions back.
                // Relevant attachments: those toward the coordinator and
                // toward the other parts of the component.
                let coord = self.p0[low];
                let mut targets: HashSet<VertexId> = HashSet::from([coord]);
                for &i in &comp {
                    targets.extend(self.parts[i].members.iter().copied());
                }
                for &i in &comp {
                    let atts = self.attachments_to(i, low);
                    let att = atts.first().copied().ok_or_else(|| {
                        EmbedError::Internal("low-connection without attachment".into())
                    })?;
                    let region = self.region(&[i]);
                    let mut path = self.path_within(&region, self.parts[i].leader, att)?;
                    path.push(coord);
                    let mut others = targets.clone();
                    for &v in &self.parts[i].members {
                        others.remove(&v);
                    }
                    let relevant = self.attachments_toward(i, &others);
                    let words = summary_words(self.g, &self.parts[i].members, &relevant);
                    let rev: Vec<VertexId> = path.iter().rev().copied().collect();
                    transfers.push(Transfer::new(path, words));
                    transfers.push(Transfer::new(rev, words));
                }
                merges.push(comp);
            }
        }
        self.metrics
            .add(schedule(self.g, &transfers, self.exec.sim().budget_words)?);
        let mut step = Metrics::new();
        for comp in merges {
            let kept = self.union_parts(&comp)?;
            step.join_parallel(self.housekeeping(&[kept]));
        }
        self.metrics.add(step);
        Ok(())
    }

    /// Steps 2c + 2d: retire parts connected to exactly one `P_0` vertex and
    /// to no other part. Without an outside connection (2c) they are done
    /// for good; with one (2d) they only rejoin at the very last step —
    /// either way they stop participating in the merge reduction.
    fn step_c_d(&mut self) -> Result<(), EmbedError> {
        let mut transfers: Vec<Transfer> = Vec::new();
        let mut step = Metrics::new();
        for i in self.active_indices() {
            let conns = self.connections(i);
            if conns.len() != 1 || !self.part_neighbors(i).is_empty() {
                continue;
            }
            let pos = *conns.iter().next().expect("one connection");
            let coord = self.p0[pos];
            // The part computes one fixed embedding (a pairwise merge with
            // {i}): housekeeping; then delivers the order of its connecting
            // edges to the coordinator: one word per connecting edge, in
            // parallel over those edges (plus the outside flag for 2d).
            step.join_parallel(self.housekeeping(&[i]));
            for att in self.attachments_to(i, pos) {
                transfers.push(Transfer::new(vec![att, coord], 2));
            }
            if self.has_outside(i) {
                self.stats.retired_single += 1; // 2d
            } else {
                self.stats.retired_single += 1; // 2c
            }
            self.status[i] = Status::Retired;
        }
        self.metrics.add(step);
        self.metrics
            .add(schedule(self.g, &transfers, self.exec.sim().budget_words)?);
        Ok(())
    }

    /// Steps 2e–2i: coordinator copies (free — routing already may use the
    /// spine), symmetry breaking on the inter-part graph, star merges, and
    /// pausing of long monotone paths.
    fn step_f_to_i(&mut self) -> Result<(), EmbedError> {
        let actives = self.active_indices();
        if actives.len() < 2 {
            return Ok(());
        }
        // Build the virtual inter-part graph, colored by low connection.
        let vidx: HashMap<usize, usize> =
            actives.iter().enumerate().map(|(vi, &i)| (i, vi)).collect();
        let mut gv = Graph::new(actives.len());
        let mut colors = vec![0u32; actives.len()];
        for (vi, &i) in actives.iter().enumerate() {
            colors[vi] = *self.connections(i).iter().next().unwrap_or(&0) as u32;
            for nb in self.part_neighbors(i) {
                if let Some(&vj) = vidx.get(&nb) {
                    if vi < vj {
                        gv.add_edge(VertexId::from_index(vi), VertexId::from_index(vj))
                            .ok();
                    }
                }
            }
        }
        // The symmetry-breaking segments run on the *virtual* inter-part
        // graph; enter the symmetry phase around them so the trace auditor
        // attributes the kernel segments to their own phase and a run
        // killed here degrades as symmetry-incomplete (their real-network
        // cost is charged analytically below, not by these kernel runs).
        self.exec.enter(Phase::Symmetry);
        let outcome = symmetry_break_ctx(self.exec, &gv, &colors)?;
        self.exec.enter(Phase::Merge);
        self.stats.symmetry_rounds_virtual += outcome.rounds;
        // Remark 1: each virtual round costs O(part diameter) real rounds.
        let max_depth = actives
            .iter()
            .map(|&i| self.region_depth(&[i]))
            .max()
            .unwrap_or(0);
        let sizes: usize = actives.iter().map(|&i| self.parts[i].len()).sum();
        let symmetry_rounds = outcome.rounds * (2 * max_depth + 2);
        self.metrics.add(Metrics {
            rounds: symmetry_rounds,
            messages: outcome.rounds * sizes,
            words: 2 * outcome.rounds * sizes,
            max_words_edge_round: 3,
            phase_rounds: PhaseRounds {
                symmetry: symmetry_rounds,
                ..PhaseRounds::default()
            },
            ..Metrics::default()
        });

        // (g)/(h): star merges (stars from the lemma plus 2-chains).
        let mut merge_groups: Vec<Vec<usize>> = Vec::new();
        for (center, leaves) in &outcome.stars {
            let mut group = vec![actives[center.index()]];
            group.extend(leaves.iter().map(|l| actives[l.index()]));
            merge_groups.push(group);
        }
        for chain in &outcome.chains {
            match chain.len() {
                2 => merge_groups.push(chain.iter().map(|c| actives[c.index()]).collect()),
                l if l >= 3 => {
                    // (i): set aside; these skip the next iteration.
                    self.stats.paused_paths += 1;
                    for c in chain {
                        self.status[actives[c.index()]] = Status::Paused;
                    }
                }
                _ => {}
            }
        }
        let mut transfers: Vec<Transfer> = Vec::new();
        let mut step = Metrics::new();
        for group in merge_groups {
            // Charge: each satellite ships its summary to the group head and
            // receives decisions back, routed within the union region.
            let head = group[0];
            let region = self.region(&group);
            let mut group_vertices: HashSet<VertexId> = HashSet::new();
            for &i in &group {
                group_vertices.extend(self.parts[i].members.iter().copied());
            }
            for &i in &group[1..] {
                let path =
                    self.path_within(&region, self.parts[i].leader, self.parts[head].leader)?;
                let mut others = group_vertices.clone();
                for &v in &self.parts[i].members {
                    others.remove(&v);
                }
                let relevant = self.attachments_toward(i, &others);
                let words = summary_words(self.g, &self.parts[i].members, &relevant);
                let rev: Vec<VertexId> = path.iter().rev().copied().collect();
                transfers.push(Transfer::new(path, words));
                transfers.push(Transfer::new(rev, words));
            }
            let kept = self.union_parts(&group)?;
            step.join_parallel(self.housekeeping(&[kept]));
        }
        self.metrics
            .add(schedule(self.g, &transfers, self.exec.sim().budget_words)?);
        self.metrics.add(step);
        Ok(())
    }

    /// Steps 3–5: parts connected to exactly two `P_0` vertices and nothing
    /// else embed themselves, deliver their orders to both coordinators
    /// (step 3), which order them deterministically (step 4); only the
    /// highest-id part per `(i, j)` pair stays for step 6 (step 5).
    fn steps_3_to_5(&mut self) -> Result<(), EmbedError> {
        // Paused paths rejoin from here on.
        for s in self.status.iter_mut() {
            if *s == Status::Paused {
                *s = Status::Active;
            }
        }
        let mut doubles: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
        let mut transfers: Vec<Transfer> = Vec::new();
        let mut step = Metrics::new();
        for i in self.active_indices() {
            let conns = self.connections(i);
            if conns.len() != 2 || !self.part_neighbors(i).is_empty() || self.has_outside(i) {
                continue;
            }
            let mut it = conns.iter();
            let (a, b) = (*it.next().unwrap(), *it.next().unwrap());
            // Step 3: report the part id and both connection numbers to both
            // coordinators, then embed via two pairwise merges.
            for pos in [a, b] {
                for att in self.attachments_to(i, pos) {
                    transfers.push(Transfer::new(vec![att, self.p0[pos]], 3));
                }
            }
            step.join_parallel(self.housekeeping(&[i]));
            doubles.entry((a, b)).or_default().push(i);
        }
        self.metrics.add(step);
        self.metrics
            .add(schedule(self.g, &transfers, self.exec.sim().budget_words)?);
        // Step 5: keep only the highest-leader part per (i, j) pair.
        for (_, group) in doubles {
            let keep = group
                .iter()
                .copied()
                .max_by_key(|&i| self.parts[i].leader)
                .expect("non-empty group");
            for i in group {
                if i != keep {
                    self.status[i] = Status::Retired;
                    self.stats.retired_double += 1;
                }
            }
        }
        Ok(())
    }

    /// Step 6: the restricted path-coordinated merge with `P_0` as the
    /// coordinator, producing the fully merged part.
    fn step_6(&mut self, h_members: &[VertexId]) -> Result<PartState, EmbedError> {
        let remaining = self.active_indices();
        self.stats.final_parts = remaining.len();
        let s = self.p0[0];
        let mut transfers: Vec<Transfer> = Vec::new();
        let mut step = Metrics::new();
        for &i in &remaining {
            let conns = self.connections(i);
            let low = *conns.iter().next().ok_or_else(|| {
                EmbedError::Internal("remaining part without P_0 connection".into())
            })?;
            let atts = self.attachments_to(i, low);
            let att = atts[0];
            // Summary: leader -> low coordinator -> pipelined along P_0 to s.
            let region = self.region(&[i]);
            let mut path = self.path_within(&region, self.parts[i].leader, att)?;
            for pos in (0..=low).rev() {
                path.push(self.p0[pos]);
            }
            let words = 4 + conns.len();
            let rev: Vec<VertexId> = path.iter().rev().copied().collect();
            transfers.push(Transfer::new(path, words));
            transfers.push(Transfer::new(rev, words));
            step.join_parallel(self.housekeeping(&[i]));
        }
        // Every part (including retired ones) receives its final rotation
        // slots: one word per connecting edge, in parallel.
        for i in 0..self.parts.len() {
            if self.parts[i].is_empty() {
                continue;
            }
            for pos in self.connections(i) {
                for att in self.attachments_to(i, pos) {
                    transfers.push(Transfer::new(vec![self.p0[pos], att], 1));
                }
            }
        }
        // P_0's own sweep: one token pass along the path.
        step.join_parallel(Metrics {
            rounds: self.p0.len(),
            messages: self.p0.len(),
            words: self.p0.len(),
            max_words_edge_round: 1,
            ..Metrics::default()
        });
        self.metrics.add(step);
        self.metrics
            .add(schedule(self.g, &transfers, self.exec.sim().budget_words)?);
        let _ = s;

        let merged = PartState::new(h_members.to_vec());
        if self.check {
            verify_part(self.g, &merged.members)?;
        }
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition_subtree;
    use crate::setup::run_setup;
    use planar_lib::gen;

    /// Runs setup + one partition + the merge of that partition's parts
    /// (each hanging part used as-is, unrecursed — valid because merge only
    /// needs member sets).
    fn merge_one_level(g: &Graph) -> MergeOutcome {
        let cfg = SimConfig::default();
        let (setup, _) = run_setup(g, &cfg).unwrap();
        let p = partition_subtree(g, &setup.tree, setup.tree.root, &cfg).unwrap();
        let hanging: Vec<PartState> = p
            .parts
            .iter()
            .map(|q| PartState::new(q.members.clone()))
            .collect();
        merge_parts(g, p.p0.clone(), hanging, &cfg, true).unwrap()
    }

    #[test]
    fn merge_covers_whole_graph() {
        let g = gen::grid(5, 5);
        let out = merge_one_level(&g);
        assert_eq!(out.part.len(), 25);
        assert!(out.metrics.rounds > 0);
        assert_eq!(out.stats.subtree_size, 25);
    }

    #[test]
    fn merge_on_cycle() {
        let g = gen::cycle(12);
        let out = merge_one_level(&g);
        assert_eq!(out.part.len(), 12);
    }

    #[test]
    fn merge_on_tree() {
        let g = gen::random_tree(30, 7);
        let out = merge_one_level(&g);
        assert_eq!(out.part.len(), 30);
    }

    #[test]
    fn merge_on_k4_subdivided() {
        let g = gen::k4_subdivided(4);
        let out = merge_one_level(&g);
        assert_eq!(out.part.len(), g.vertex_count());
    }

    #[test]
    fn merge_stats_populated() {
        let g = gen::triangulated_grid(4, 6);
        let out = merge_one_level(&g);
        assert!(out.stats.initial_parts >= 1);
        assert!(out.stats.final_parts <= out.stats.initial_parts);
        assert!(out.stats.p0_len >= 1);
    }

    #[test]
    fn merge_trivial_no_hanging_parts() {
        // A path where P_0 swallows... a 2-vertex graph: P_0 = both.
        let g = gen::path(2);
        let cfg = SimConfig::default();
        let (setup, _) = run_setup(&g, &cfg).unwrap();
        let p = partition_subtree(&g, &setup.tree, setup.tree.root, &cfg).unwrap();
        let hanging: Vec<PartState> = p
            .parts
            .iter()
            .map(|q| PartState::new(q.members.clone()))
            .collect();
        let out = merge_parts(&g, p.p0, hanging, &cfg, true).unwrap();
        assert_eq!(out.part.len(), 2);
    }

    #[test]
    fn final_parts_bounded_on_wide_shallow_graph() {
        // A fan has diameter 2; the paper's argument says the restricted
        // merge sees O(D) parts after the reduction. Measure it.
        let g = gen::fan(40);
        let out = merge_one_level(&g);
        assert!(
            out.stats.final_parts <= 12,
            "expected O(D) final parts on a diameter-2 graph, got {}",
            out.stats.final_parts
        );
    }
}
