//! Interfaces of parts (Section 3, Observation 3.2, Figures 2–4).
//!
//! The *interface* of a part is the set of cyclic orders in which its
//! half-embedded edges can appear around the part, over all planar
//! embeddings that keep them on one face. Observation 3.2 states that this
//! set is exactly characterized by the biconnected-component decomposition:
//! each block's boundary order is fixed up to a *flip* (Figure 2), and the
//! blocks around each cut vertex may be *permuted* freely as long as bundles
//! stay consecutive (Figure 3).
//!
//! [`InterfaceSummary`] is the summarized representation merge coordinators
//! exchange (the stand-in for the full version's compressed PQ-trees), and
//! [`achievable_boundary_orders`] is a brute-force oracle used by the test
//! suite and the F-obs32 experiment to validate the characterization
//! exhaustively on small parts.

use std::collections::{BTreeSet, HashMap, HashSet};

use planar_graph::biconnected::BiconnectedDecomposition;
use planar_graph::cyclic::canonical_rotation_reflect;
use planar_graph::{Graph, RotationSystem, VertexId};
use planar_lib::{embed_pinned, PlanarityError};

/// The fixed boundary order of one biconnected block (Figure 2: unique up
/// to a flip).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockInterface {
    /// The block id, following the paper: its smallest edge id.
    pub id: planar_graph::EdgeId,
    /// The relevant vertices (attachments and cut vertices) of the block in
    /// their fixed cyclic boundary order.
    pub attachment_order: Vec<VertexId>,
}

/// A part's interface summary: the information a merge coordinator needs,
/// per Observation 3.2.
#[derive(Clone, Debug)]
pub struct InterfaceSummary {
    /// Boundary orders of the relevant blocks.
    pub blocks: Vec<BlockInterface>,
    /// Cut vertices of the part that touch relevant blocks.
    pub cut_vertices: Vec<VertexId>,
    /// The relevant attachment vertices this summary was computed for.
    pub relevant: Vec<VertexId>,
}

impl InterfaceSummary {
    /// Computes the summary of the part `gp` (a connected graph on local
    /// ids) with respect to the given relevant attachment vertices.
    ///
    /// # Errors
    ///
    /// Returns [`PlanarityError`] if the part is not planar or some block
    /// cannot host its relevant vertices on one face (which the safety
    /// property rules out for parts arising in the algorithm).
    pub fn compute(gp: &Graph, relevant: &[VertexId]) -> Result<Self, PlanarityError> {
        let bc = BiconnectedDecomposition::compute(gp);
        let relevant_set: HashSet<VertexId> = relevant.iter().copied().collect();
        let mut blocks = Vec::new();
        let mut cuts: BTreeSet<VertexId> = BTreeSet::new();
        for b in 0..bc.block_count() {
            let verts = bc.block_vertices(b);
            // Vertices of this block that matter for the interface: relevant
            // attachments plus cut vertices (which lead to other blocks).
            let marked: Vec<VertexId> = verts
                .iter()
                .copied()
                .filter(|v| relevant_set.contains(v) || bc.is_cut_vertex(*v))
                .collect();
            if marked.iter().any(|v| bc.is_cut_vertex(*v)) {
                cuts.extend(marked.iter().copied().filter(|v| bc.is_cut_vertex(*v)));
            }
            if marked.len() < 2 {
                continue; // no ordering constraint from this block
            }
            // The fixed boundary order: embed the block with the marked
            // vertices pinned to one face.
            let index: HashMap<VertexId, u32> = verts
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, i as u32))
                .collect();
            let mut sub = Graph::new(verts.len());
            for &e in bc.block_edges(b) {
                sub.add_edge(VertexId(index[&e.lo()]), VertexId(index[&e.hi()]))
                    .expect("block edges are unique");
            }
            let pins: Vec<VertexId> = marked.iter().map(|v| VertexId(index[v])).collect();
            let pe = embed_pinned(&sub, &pins)?;
            let attachment_order: Vec<VertexId> =
                pe.pin_order.iter().map(|p| verts[p.index()]).collect();
            blocks.push(BlockInterface {
                id: bc.block_id(b),
                attachment_order,
            });
        }
        blocks.sort_by_key(|b| b.id);
        Ok(InterfaceSummary {
            blocks,
            cut_vertices: cuts.into_iter().collect(),
            relevant: relevant.to_vec(),
        })
    }

    /// The summary's on-wire size in `O(log n)`-bit words.
    pub fn words(&self) -> usize {
        4 + self
            .blocks
            .iter()
            .map(|b| 2 + b.attachment_order.len())
            .sum::<usize>()
            + self.cut_vertices.len()
    }
}

/// Brute-force oracle: enumerates **all** rotation systems of the part
/// augmented with one pendant leaf per half-embedded edge, keeps the planar
/// ones with every leaf on a common face, and returns the set of achievable
/// cyclic orders of the half-embedded edges (canonicalized up to rotation
/// and reflection).
///
/// `half_edges` lists `(attachment vertex, external label)` pairs. Only
/// usable for small parts — the enumeration is `prod_v (deg(v) - 1)!`.
///
/// # Panics
///
/// Panics if an attachment vertex is out of range.
pub fn achievable_boundary_orders(
    gp: &Graph,
    half_edges: &[(VertexId, u32)],
) -> BTreeSet<Vec<u32>> {
    let n = gp.vertex_count();
    let h = half_edges.len();
    // Build the augmented graph: leaf i = vertex n + i.
    let mut aug = Graph::new(n + h);
    for e in gp.edges() {
        aug.add_edge(e.lo(), e.hi()).expect("copying simple graph");
    }
    for (i, &(a, _)) in half_edges.iter().enumerate() {
        aug.add_edge(VertexId::from_index(n + i), a)
            .expect("leaf edges are new");
    }
    let leaf_label: HashMap<VertexId, u32> = half_edges
        .iter()
        .enumerate()
        .map(|(i, &(_, ext))| (VertexId::from_index(n + i), ext))
        .collect();

    let mut result = BTreeSet::new();
    let mut orders: Vec<Vec<VertexId>> =
        aug.vertices().map(|v| aug.neighbors(v).to_vec()).collect();
    enumerate_rotations(&aug, &mut orders, 0, &mut |orders| {
        let rs = RotationSystem::new(&aug, orders.to_vec()).expect("permuted neighbors");
        if !rs.is_planar_embedding() {
            return;
        }
        // Locate the face containing each leaf's directed edge.
        let faces = rs.faces();
        let mut leaf_face: Option<usize> = None;
        for (fi, face) in faces.iter().enumerate() {
            if face.iter().any(|&(u, _)| leaf_label.contains_key(&u)) {
                // All leaves must be in one face.
                let leaves_here: usize = face
                    .iter()
                    .filter(|&&(u, _)| leaf_label.contains_key(&u))
                    .count();
                if leaves_here == h {
                    leaf_face = Some(fi);
                }
                break; // the first face with a leaf must contain all of them
            }
        }
        if let Some(fi) = leaf_face {
            let seq: Vec<u32> = faces[fi]
                .iter()
                .filter_map(|&(u, _)| leaf_label.get(&u).copied())
                .collect();
            result.insert(canonical_rotation_reflect(&seq));
        }
    });
    result
}

/// Recursively enumerates all cyclic neighbor orders (first neighbor fixed
/// to quotient out rotations) of vertices `v..`, invoking `f` on each
/// complete assignment.
fn enumerate_rotations<F: FnMut(&[Vec<VertexId>])>(
    g: &Graph,
    orders: &mut Vec<Vec<VertexId>>,
    v: usize,
    f: &mut F,
) {
    if v == g.vertex_count() {
        f(orders);
        return;
    }
    let d = g.degree(VertexId::from_index(v));
    if d <= 2 {
        enumerate_rotations(g, orders, v + 1, f);
        return;
    }
    // Permute positions 1..d (position 0 fixed).
    permute_suffix(orders, v, 1, &mut |orders| {
        enumerate_rotations(g, orders, v + 1, f)
    });
}

fn permute_suffix<F: FnMut(&mut Vec<Vec<VertexId>>)>(
    orders: &mut Vec<Vec<VertexId>>,
    v: usize,
    k: usize,
    f: &mut F,
) {
    let d = orders[v].len();
    if k == d {
        f(orders);
        return;
    }
    for i in k..d {
        orders[v].swap(k, i);
        permute_suffix(orders, v, k + 1, f);
        orders[v].swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planar_graph::cyclic::canonical_rotation_reflect as canon;

    #[test]
    fn triangle_interface_is_rigid() {
        // Figure 2: a biconnected block's boundary order is fixed up to flip.
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        let he = [(VertexId(0), 0), (VertexId(1), 1), (VertexId(2), 2)];
        let orders = achievable_boundary_orders(&g, &he);
        assert_eq!(orders.len(), 1);
        assert!(orders.contains(&canon(&[0u32, 1, 2])));
    }

    #[test]
    fn bowtie_blocks_flip_independently() {
        // Figure 4(c): two triangles sharing cut vertex 2; half-edges at the
        // four non-cut vertices. Bundles stay consecutive; flipping one
        // block gives the second class.
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]).unwrap();
        let he = [
            (VertexId(0), 0),
            (VertexId(1), 1),
            (VertexId(3), 2),
            (VertexId(4), 3),
        ];
        let orders = achievable_boundary_orders(&g, &he);
        let expected: BTreeSet<Vec<u32>> = [canon(&[0u32, 1, 2, 3]), canon(&[0u32, 1, 3, 2])]
            .into_iter()
            .collect();
        assert_eq!(orders, expected);
        // Interleavings like 0,2,1,3 are NOT achievable (Figure 3).
        assert!(!orders.contains(&canon(&[0u32, 2, 1, 3])));
    }

    #[test]
    fn star_of_blocks_permutes_freely() {
        // Figure 4(d): four pendant edges at a cut vertex permute freely:
        // all 3 cyclic classes of 4 elements are achievable.
        let g = Graph::from_edges(5, [(4, 0), (4, 1), (4, 2), (4, 3)]).unwrap();
        let he = [
            (VertexId(0), 0),
            (VertexId(1), 1),
            (VertexId(2), 2),
            (VertexId(3), 3),
        ];
        let orders = achievable_boundary_orders(&g, &he);
        assert_eq!(orders.len(), 3);
    }

    #[test]
    fn path_part_trivial_interface() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let he = [(VertexId(0), 0), (VertexId(2), 1)];
        let orders = achievable_boundary_orders(&g, &he);
        assert_eq!(orders.len(), 1);
    }

    #[test]
    fn summary_of_bowtie() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]).unwrap();
        let relevant = vec![VertexId(0), VertexId(1), VertexId(3), VertexId(4)];
        let s = InterfaceSummary::compute(&g, &relevant).unwrap();
        assert_eq!(s.blocks.len(), 2);
        assert_eq!(s.cut_vertices, vec![VertexId(2)]);
        // Each block's order contains its two attachments plus the cut vertex.
        for b in &s.blocks {
            assert_eq!(b.attachment_order.len(), 3);
            assert!(b.attachment_order.contains(&VertexId(2)));
        }
        assert!(s.words() >= 4 + 2 * (2 + 3));
    }

    #[test]
    fn summary_ignores_irrelevant_blocks() {
        // Path of two triangles; only the far triangle's vertices relevant;
        // the near triangle still matters only through its cut vertices.
        let g =
            Graph::from_edges(6, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]).unwrap();
        let s = InterfaceSummary::compute(&g, &[VertexId(4), VertexId(5)]).unwrap();
        // Blocks with >= 2 marked vertices: the far triangle {3,4,5} (cut 3
        // + relevant 4,5), the bridge {2,3} (two cuts), and the near
        // triangle {0,1,2} only via cut vertex 2 (1 marked -> skipped).
        let block_sizes: Vec<usize> = s.blocks.iter().map(|b| b.attachment_order.len()).collect();
        assert!(block_sizes.contains(&3)); // far triangle
        assert!(!s
            .blocks
            .iter()
            .any(|b| b.attachment_order.contains(&VertexId(0))));
    }

    #[test]
    fn summary_rejects_nonplanar_part() {
        let g = planar_lib::gen::complete(5);
        let relevant: Vec<VertexId> = g.vertices().collect();
        assert!(InterfaceSummary::compute(&g, &relevant).is_err());
    }
}
