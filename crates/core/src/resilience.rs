//! Fault-tolerant phase execution: the glue between the kernel's fault
//! injection ([`congest_sim::FaultPlan`]) and the embedding driver.
//!
//! Every protocol phase of the algorithm funnels its kernel invocation
//! through [`run_phase`]. On a perfect network (`reliability == None`) this
//! is byte-for-byte [`congest_sim::run`] — the fault-free hot path pays
//! nothing. When the driver opts into reliable delivery, each phase is
//! lifted into the ack/retransmit wrapper
//! ([`Reliable`](congest_sim::protocols::Reliable)) and the per-edge budget
//! is widened to [`wrapped_budget`]: a data frame costs payload + 1
//! sequence word, received frames are acknowledged *cumulatively* (at most
//! one 1-word ack per sender per round), and a retransmission re-charges
//! the link. A phase that fit in `B` words fault-free therefore puts at
//! most `2·B + 1` wrapped words on a link per fault-free round; the budget
//! is widened to `3·B + 2`, leaving `B + 1` words of slack for
//! retransmissions colliding with fresh traffic.
//!
//! The driver additionally arms the kernel's round-budget watchdog
//! ([`auto_watchdog`]) whenever a fault plan is active, so that a protocol
//! stalled by message loss degrades (`SimError::WatchdogTimeout` →
//! [`EmbedError::Degraded`](crate::EmbedError)) instead of spinning to the
//! generic `max_rounds` cap.

use congest_sim::protocols::{run_reliable, ReliableConfig};
use congest_sim::{run, NodeProgram, SimConfig, SimError, SimOutcome};
use planar_graph::Graph;

/// The per-edge word budget a [`Reliable`](congest_sim::protocols::Reliable)
/// wrapped phase needs to carry the traffic a budget of `base` words carries
/// fault-free: `2·base + 1` covers sequence words plus the single
/// cumulative ack, and the remaining `base + 1` words absorb
/// retransmissions that collide with fresh traffic.
#[must_use]
pub fn wrapped_budget(base: usize) -> usize {
    3 * base + 2
}

/// The round-budget watchdog the driver arms in fault mode when the caller
/// did not pick one: generous enough for every `O(D)` phase of the
/// algorithm plus retransmission stretch, but finite, so lossy runs
/// terminate in `Degraded` rather than hanging until `max_rounds`.
#[must_use]
pub fn auto_watchdog(n: usize) -> usize {
    8 * n + 256
}

/// Runs one protocol phase, reliably if requested.
///
/// With `reliability == None` this is exactly [`congest_sim::run`]. With
/// `Some(rel)` the programs run inside the ack/retransmit wrapper against a
/// config whose budget is widened by [`wrapped_budget`]; the wrapper's
/// retransmission count is folded into the returned metrics.
///
/// # Errors
///
/// Propagates [`SimError`] exactly as [`congest_sim::run`] does.
pub fn run_phase<P: NodeProgram>(
    g: &Graph,
    programs: Vec<P>,
    cfg: &SimConfig,
    reliability: Option<&ReliableConfig>,
) -> Result<SimOutcome<P>, SimError> {
    match reliability {
        None => run(g, programs, cfg),
        Some(rel) => {
            let mut wrapped = cfg.clone();
            wrapped.budget_words = wrapped_budget(cfg.budget_words);
            run_reliable(g, programs, &wrapped, rel)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::protocols::LeaderBfs;
    use congest_sim::FaultPlan;
    use planar_graph::VertexId;
    use planar_lib::gen;

    fn leader_programs(g: &Graph) -> Vec<LeaderBfs> {
        g.vertices()
            .map(|v| LeaderBfs::new(v, g.neighbors(v).to_vec()))
            .collect()
    }

    #[test]
    fn unreliable_phase_is_plain_run() {
        let g = gen::grid(3, 3);
        let cfg = SimConfig::default();
        let a = run_phase(&g, leader_programs(&g), &cfg, None).unwrap();
        let b = run(&g, leader_programs(&g), &cfg).unwrap();
        let view = |o: &SimOutcome<LeaderBfs>| {
            o.programs
                .iter()
                .map(|p| (p.leader(), p.parent(), p.dist()))
                .collect::<Vec<_>>()
        };
        assert_eq!(view(&a), view(&b));
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn reliable_phase_survives_loss() {
        let g = gen::grid(3, 3);
        let cfg = SimConfig {
            faults: FaultPlan::uniform(5, 0.3, 0.05, 0.2, 2),
            ..SimConfig::default()
        };
        let rel = ReliableConfig::default();
        let out = run_phase(&g, leader_programs(&g), &cfg, Some(&rel)).unwrap();
        assert!(out.programs.iter().all(|p| p.leader() == VertexId(8)));
        assert!(out.metrics.dropped > 0);
    }
}
