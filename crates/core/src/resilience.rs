//! Fault-tolerance policy: the budget and watchdog arithmetic connecting
//! the kernel's fault injection ([`congest_sim::FaultPlan`]) to the
//! embedding driver.
//!
//! Every protocol phase of the algorithm funnels its kernel invocation
//! through [`ExecutionContext::run_phase`](crate::ExecutionContext). On a
//! perfect network (`reliability == None`) that is byte-for-byte
//! [`congest_sim::run`] — the fault-free hot path pays nothing. When the
//! driver opts into reliable delivery, each phase is
//! lifted into the ack/retransmit wrapper
//! ([`Reliable`](congest_sim::protocols::Reliable)) and the per-edge budget
//! is widened to [`wrapped_budget`]: a data frame costs payload + 1
//! sequence word, received frames are acknowledged *cumulatively* (at most
//! one 1-word ack per sender per round), and a retransmission re-charges
//! the link. A phase that fit in `B` words fault-free therefore puts at
//! most `2·B + 1` wrapped words on a link per fault-free round; the budget
//! is widened to `3·B + 2`, leaving `B + 1` words of slack for
//! retransmissions colliding with fresh traffic.
//!
//! The driver additionally arms the kernel's round-budget watchdog
//! ([`auto_watchdog`]) whenever a fault plan is active, so that a protocol
//! stalled by message loss degrades (`SimError::WatchdogTimeout` →
//! [`EmbedError::Degraded`](crate::EmbedError)) instead of spinning to the
//! generic `max_rounds` cap.

/// The per-edge word budget a [`Reliable`](congest_sim::protocols::Reliable)
/// wrapped phase needs to carry the traffic a budget of `base` words carries
/// fault-free: `2·base + 1` covers sequence words plus the single
/// cumulative ack, and the remaining `base + 1` words absorb
/// retransmissions that collide with fresh traffic.
#[must_use]
pub fn wrapped_budget(base: usize) -> usize {
    3 * base + 2
}

/// The round-budget watchdog the driver arms in fault mode when the caller
/// did not pick one: generous enough for every `O(D)` phase of the
/// algorithm plus retransmission stretch, but finite, so lossy runs
/// terminate in `Degraded` rather than hanging until `max_rounds`.
#[must_use]
pub fn auto_watchdog(n: usize) -> usize {
    8 * n + 256
}
