//! The merge patterns of Section 5.2, as standalone operations.
//!
//! The paper builds its merging machinery from four increasingly powerful
//! patterns — *pairwise*, *star*, *vertex-coordinated* and
//! *path-coordinated* — and the Section 5.3 driver ([`crate::merge`])
//! composes them. This module exposes each pattern directly: given parts
//! and a coordinator, it validates the pattern's precondition, charges the
//! pattern's communication (summaries routed to the coordinating
//! endpoint, decisions routed back, Remark 1 housekeeping), merges, and
//! verifies the result against the safety property's consequence.
//!
//! These standalone entry points exist for testing, teaching and ablation:
//! the experiment suite uses them to measure each pattern's cost in
//! isolation.

use std::collections::{HashSet, VecDeque};

use congest_sim::routing::{schedule, Transfer};
use congest_sim::{Metrics, SimConfig};
use planar_graph::{Graph, VertexId};

use crate::error::EmbedError;
use crate::parts::{summary_words, verify_part, PartState};

/// The result of a standalone pattern application.
#[derive(Clone, Debug)]
pub struct PatternOutcome {
    /// The merged part.
    pub part: PartState,
    /// Charged communication cost.
    pub metrics: Metrics,
}

/// Checks that two parts share at least one (half-embedded) edge.
fn are_adjacent(g: &Graph, a: &PartState, b: &PartState) -> bool {
    a.members
        .iter()
        .any(|&v| g.neighbors(v).iter().any(|w| b.contains(*w)))
}

/// BFS path between two vertices inside an allowed vertex set.
fn path_in_region(
    g: &Graph,
    allowed: &HashSet<VertexId>,
    from: VertexId,
    to: VertexId,
) -> Result<Vec<VertexId>, EmbedError> {
    if from == to {
        return Ok(vec![from]);
    }
    let mut pred = std::collections::HashMap::new();
    let mut seen = HashSet::from([from]);
    let mut queue = VecDeque::from([from]);
    while let Some(v) = queue.pop_front() {
        for &w in g.neighbors(v) {
            if !allowed.contains(&w) {
                continue;
            }
            if w == to {
                let mut path = vec![to, v];
                let mut cur = v;
                while let Some(&p) = pred.get(&cur) {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Ok(path);
            }
            if seen.insert(w) {
                pred.insert(w, v);
                queue.push_back(w);
            }
        }
    }
    Err(EmbedError::Internal(
        "pattern region is disconnected".into(),
    ))
}

/// BFS depth of a region from a vertex (the Remark 1 housekeeping radius).
fn region_depth(g: &Graph, allowed: &HashSet<VertexId>, from: VertexId) -> usize {
    let mut depth = std::collections::HashMap::from([(from, 0usize)]);
    let mut queue = VecDeque::from([from]);
    let mut max = 0;
    while let Some(v) = queue.pop_front() {
        let d = depth[&v];
        for &w in g.neighbors(v) {
            if allowed.contains(&w) && !depth.contains_key(&w) {
                depth.insert(w, d + 1);
                max = max.max(d + 1);
                queue.push_back(w);
            }
        }
    }
    max
}

fn charge_and_merge(
    g: &Graph,
    head: &PartState,
    satellites: &[&PartState],
    cfg: &SimConfig,
    check: bool,
) -> Result<PatternOutcome, EmbedError> {
    let mut region: HashSet<VertexId> = head.members.iter().copied().collect();
    for s in satellites {
        region.extend(s.members.iter().copied());
    }
    // Each satellite ships its merge-relevant summary to the head's leader
    // and receives decisions back.
    let mut transfers = Vec::new();
    for s in satellites {
        let path = path_in_region(g, &region, s.leader, head.leader)?;
        let mut others = region.clone();
        for &v in &s.members {
            others.remove(&v);
        }
        let relevant: Vec<VertexId> = s
            .members
            .iter()
            .copied()
            .filter(|&v| g.neighbors(v).iter().any(|w| others.contains(w)))
            .collect();
        let words = summary_words(g, &s.members, &relevant);
        let rev: Vec<VertexId> = path.iter().rev().copied().collect();
        transfers.push(Transfer::new(path, words));
        transfers.push(Transfer::new(rev, words));
    }
    let mut metrics = schedule(g, &transfers, cfg.budget_words)?;
    let mut all: Vec<&PartState> = vec![head];
    all.extend_from_slice(satellites);
    let merged = PartState::union(&all);
    // Remark 1 housekeeping on the merged part.
    metrics.add(Metrics {
        rounds: 2 * region_depth(g, &region, merged.leader) + 2,
        messages: 2 * merged.len(),
        words: 2 * merged.len(),
        max_words_edge_round: 1,
        ..Metrics::default()
    });
    if check {
        verify_part(g, &merged.members)?;
    }
    Ok(PatternOutcome {
        part: merged,
        metrics,
    })
}

/// **Pairwise merge** (Section 5.2): merges two adjacent parts.
///
/// # Errors
///
/// * [`EmbedError::Internal`] if the parts are not adjacent;
/// * [`EmbedError::NonPlanar`] if the merged part has no planar embedding
///   with its half-embedded edges co-facial.
pub fn pairwise_merge(
    g: &Graph,
    a: &PartState,
    b: &PartState,
    cfg: &SimConfig,
    check: bool,
) -> Result<PatternOutcome, EmbedError> {
    if !are_adjacent(g, a, b) {
        return Err(EmbedError::Internal(
            "pairwise merge needs adjacent parts".into(),
        ));
    }
    charge_and_merge(g, a, &[b], cfg, check)
}

/// **Star merge** (Section 5.2): merges a center part with several
/// neighbors that induce a star in the inter-part graph (the satellites
/// must be pairwise non-adjacent — "as long as they do not share any
/// edges"). Equivalent to the satellite-many pairwise merges performed in
/// parallel, which is exactly how the cost comes out.
///
/// # Errors
///
/// * [`EmbedError::Internal`] if some satellite misses the center or two
///   satellites are adjacent;
/// * [`EmbedError::NonPlanar`] as for [`pairwise_merge`].
pub fn star_merge(
    g: &Graph,
    center: &PartState,
    satellites: &[&PartState],
    cfg: &SimConfig,
    check: bool,
) -> Result<PatternOutcome, EmbedError> {
    for (i, s) in satellites.iter().enumerate() {
        if !are_adjacent(g, center, s) {
            return Err(EmbedError::Internal(
                "star satellite not adjacent to center".into(),
            ));
        }
        for t in &satellites[i + 1..] {
            if are_adjacent(g, s, t) {
                return Err(EmbedError::Internal(
                    "star satellites must not share edges".into(),
                ));
            }
        }
    }
    charge_and_merge(g, center, satellites, cfg, check)
}

/// **Vertex-coordinated merge** (Section 5.2): merges a trivial
/// single-vertex part `{coordinator}` with several neighboring parts,
/// *irrespective* of the graph the parts induce among themselves. All
/// summaries flow through the coordinator.
///
/// # Errors
///
/// * [`EmbedError::Internal`] if some part has no edge to the coordinator;
/// * [`EmbedError::NonPlanar`] as for [`pairwise_merge`].
pub fn vertex_coordinated_merge(
    g: &Graph,
    coordinator: VertexId,
    parts: &[&PartState],
    cfg: &SimConfig,
    check: bool,
) -> Result<PatternOutcome, EmbedError> {
    let coord_part = PartState::new(vec![coordinator]);
    for p in parts {
        if !are_adjacent(g, &coord_part, p) {
            return Err(EmbedError::Internal(
                "vertex-coordinated merge needs parts adjacent to the coordinator".into(),
            ));
        }
    }
    charge_and_merge(g, &coord_part, parts, cfg, check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use planar_lib::gen;

    fn cfg() -> SimConfig {
        SimConfig::default()
    }

    #[test]
    fn pairwise_on_cycle_arcs() {
        let g = gen::cycle(10);
        let a = PartState::new((0..4).map(VertexId).collect());
        let b = PartState::new((4..7).map(VertexId).collect());
        let out = pairwise_merge(&g, &a, &b, &cfg(), true).unwrap();
        assert_eq!(out.part.len(), 7);
        assert!(out.metrics.rounds > 0);
    }

    #[test]
    fn pairwise_rejects_nonadjacent() {
        let g = gen::cycle(10);
        let a = PartState::new(vec![VertexId(0)]);
        let b = PartState::new(vec![VertexId(5)]);
        assert!(matches!(
            pairwise_merge(&g, &a, &b, &cfg(), true),
            Err(EmbedError::Internal(_))
        ));
    }

    #[test]
    fn star_merge_on_star_graph() {
        let g = gen::star(6);
        let center = PartState::new(vec![VertexId(0)]);
        let sats: Vec<PartState> = (1..6).map(|i| PartState::new(vec![VertexId(i)])).collect();
        let refs: Vec<&PartState> = sats.iter().collect();
        let out = star_merge(&g, &center, &refs, &cfg(), true).unwrap();
        assert_eq!(out.part.len(), 6);
    }

    #[test]
    fn star_merge_rejects_adjacent_satellites() {
        let g = gen::cycle(4);
        let center = PartState::new(vec![VertexId(0)]);
        let a = PartState::new(vec![VertexId(1)]);
        let b = PartState::new(vec![VertexId(2)]); // adjacent to a
        assert!(matches!(
            star_merge(&g, &center, &[&a, &b], &cfg(), true),
            Err(EmbedError::Internal(_))
        ));
    }

    #[test]
    fn vertex_coordinated_allows_adjacent_parts() {
        // The wheel: hub 0; rim parts are adjacent to each other — a star
        // merge must reject them but a vertex-coordinated merge succeeds.
        let g = gen::wheel(8);
        let parts: Vec<PartState> = (1..8).map(|i| PartState::new(vec![VertexId(i)])).collect();
        let refs: Vec<&PartState> = parts.iter().collect();
        assert!(star_merge(&g, &PartState::new(vec![VertexId(0)]), &refs, &cfg(), true).is_err());
        let out = vertex_coordinated_merge(&g, VertexId(0), &refs, &cfg(), true).unwrap();
        assert_eq!(out.part.len(), 8);
    }

    #[test]
    fn vertex_coordinated_requires_coordinator_edges() {
        let g = gen::path(4);
        let far = PartState::new(vec![VertexId(3)]);
        assert!(matches!(
            vertex_coordinated_merge(&g, VertexId(0), &[&far], &cfg(), true),
            Err(EmbedError::Internal(_))
        ));
    }

    #[test]
    fn merge_cost_scales_with_boundary_not_size() {
        // Two long path parts joined by one edge: the summary is O(1)
        // words, so rounds are dominated by routing the summary along the
        // part (O(diameter)), not by part size in words.
        let g = gen::path(64);
        let a = PartState::new((0..32).map(VertexId).collect());
        let b = PartState::new((32..64).map(VertexId).collect());
        let out = pairwise_merge(&g, &a, &b, &cfg(), false).unwrap();
        // Leader of a = v31, leader of b = v63: path of 32 hops, plus
        // housekeeping 2*63+2.
        assert!(
            out.metrics.rounds <= 4 * 64,
            "rounds = {}",
            out.metrics.rounds
        );
        assert!(out.metrics.words < 1000);
    }
}
