//! Typed execution context: the one object threaded through every phase of
//! the embedding pipeline.
//!
//! Before this module, each phase function took a loose bundle of
//! `(&Graph, &SimConfig, Option<&ReliableConfig>)` parameters, funneled its
//! kernel invocation through `resilience::run_phase`, and the driver kept a
//! separate string-labeled round tally on the side. [`ExecutionContext`]
//! replaces all of that plumbing:
//!
//! * one [`SimSession`] per run, so the graph's CSR arc index and the
//!   kernel's mailbox arenas are built once and reused by every phase;
//! * kernel selection ([`Kernel::Fast`] vs the executable-spec
//!   [`Kernel::Reference`]) and opt-in reliable delivery applied uniformly
//!   at the single choke point every phase already goes through;
//! * the sequential round tally ([`ExecutionContext::charge`]) keyed by the
//!   typed [`Phase`] enum, so charging rounds to an unknown phase is
//!   unrepresentable (the old stringly-typed labels needed an
//!   `unreachable!` arm);
//! * batched execution ([`ExecutionContext::run_phase_many`]): the
//!   level-synchronous scheduler hands all same-level subproblems to the
//!   kernel as vertex-disjoint [`Instance`]s and gets per-instance metrics
//!   that are bit-identical to individual runs.
//!
//! [`Scheduler`] selects how the driver walks the recursion:
//! [`Scheduler::LevelSync`] (the default) batches sibling subproblems into
//! one kernel invocation per level, while [`Scheduler::Sequential`] keeps
//! the original one-kernel-run-per-subproblem recursion as the conformance
//! oracle — both produce bit-identical rotations, metrics, statistics and
//! certification verdicts (pinned by `tests/scheduler.rs`).

use congest_sim::protocols::{
    run_reliable, unwrap_reliable, unwrap_reliable_many, wrap_instances, wrap_programs,
    ReliableConfig,
};
use congest_sim::reference::{run_reference, run_reference_many};
use congest_sim::{
    run, Instance, KernelCache, Metrics, MultiOutcome, NodeProgram, Phase, PhaseRounds, SimConfig,
    SimError, SimOutcome, SimSession, TraceEvent,
};
use planar_graph::Graph;

use crate::resilience::wrapped_budget;
use crate::EmbedderConfig;

/// Which simulation kernel executes the phases.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Kernel {
    /// The allocation-free CSR kernel (`congest_sim::run`), served through
    /// the session's warm buffers. The default.
    #[default]
    Fast,
    /// The preserved seed kernel (`congest_sim::reference`), the executable
    /// spec the fast kernel is conformance-tested against. Useful to
    /// cross-check a whole embedding run, not just isolated phases.
    Reference,
}

/// How the driver walks the partition/merge recursion.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Scheduler {
    /// Level-synchronous execution (the default): all same-level
    /// subproblems run their partition protocols in *one* batched kernel
    /// invocation over vertex-disjoint [`Instance`]s, then all their merges
    /// run, level by level. Host-side cost per level is proportional to the
    /// level's total subproblem size instead of `O(n)` per subproblem.
    #[default]
    LevelSync,
    /// The original depth-first recursion: one full-graph kernel run per
    /// subproblem phase. Kept as the conformance oracle — bit-identical
    /// outputs to [`Scheduler::LevelSync`] at a quadratic-ish host cost.
    Sequential,
}

/// Running sequential round tally, so a degraded run can report how far it
/// got (`rounds` is a sequential upper bound) and which phase it was in
/// when it failed.
#[derive(Clone, Copy, Debug)]
struct Tally {
    rounds: usize,
    phases: PhaseRounds,
    phase: Phase,
}

/// The execution context of one embedding run: graph session, simulation
/// parameters, kernel/reliability selection, and the phase-attributed
/// round tally. Every kernel invocation of every phase goes through one of
/// its `run_phase*` methods.
#[derive(Debug)]
pub struct ExecutionContext<'g> {
    session: SimSession<'g>,
    sim: SimConfig,
    reliability: Option<ReliableConfig>,
    kernel: Kernel,
    tally: Tally,
}

impl<'g> ExecutionContext<'g> {
    /// Opens a context over `g` with the embedder's full configuration
    /// (kernel, reliability, simulation parameters).
    pub fn new(g: &'g Graph, cfg: &EmbedderConfig) -> Self {
        ExecutionContext::with_kernel_cache(g, cfg, KernelCache::new())
    }

    /// Opens a context over `g` reusing a warm [`KernelCache`] from an
    /// earlier run (possibly over a different graph — the cache is
    /// graph-independent by the simulator's contract). The incremental
    /// re-embedding path threads one cache per tenant across deltas, so
    /// every re-run starts on warm mailbox arenas.
    pub fn with_kernel_cache(g: &'g Graph, cfg: &EmbedderConfig, cache: KernelCache) -> Self {
        ExecutionContext {
            session: SimSession::with_cache(g, cache),
            sim: cfg.sim.clone(),
            reliability: cfg.reliability.clone(),
            kernel: cfg.kernel,
            tally: Tally {
                rounds: 0,
                phases: PhaseRounds::default(),
                phase: Phase::Setup,
            },
        }
    }

    /// Closes the context, recovering the kernel cache for a later run.
    pub fn into_kernel_cache(self) -> KernelCache {
        self.session.into_cache()
    }

    /// Opens a bare context over `g` from simulation parameters alone: fast
    /// kernel, no reliable delivery. The standalone phase entry points
    /// (`run_setup`, `partition_subtree`, `merge_parts`, `symmetry_break`)
    /// use this to keep their historical `(&Graph, &SimConfig)` signatures.
    pub fn with_sim(g: &'g Graph, sim: &SimConfig) -> Self {
        ExecutionContext {
            session: SimSession::new(g),
            sim: sim.clone(),
            reliability: None,
            kernel: Kernel::Fast,
            tally: Tally {
                rounds: 0,
                phases: PhaseRounds::default(),
                phase: Phase::Setup,
            },
        }
    }

    /// The session graph every [`run_phase`](Self::run_phase) executes on.
    pub fn graph(&self) -> &'g Graph {
        self.session.graph()
    }

    /// The simulation parameters (budget, fault plan, watchdog, trace).
    pub fn sim(&self) -> &SimConfig {
        &self.sim
    }

    /// The reliable-delivery configuration, if phases run wrapped.
    pub fn reliability(&self) -> Option<&ReliableConfig> {
        self.reliability.as_ref()
    }

    /// The kernel executing the phases.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Heap bytes currently reserved by the context's retained arenas: the
    /// session's arc index plus every warm simulator in the kernel cache.
    /// This is the driver's resident kernel footprint — the bench harness
    /// divides it by `n` for its bytes/node column.
    pub fn memory_bytes(&self) -> usize {
        self.session.memory_bytes()
    }

    /// Enters `phase`: subsequent charges land in its bucket, a failure
    /// before the next [`enter`](Self::enter) is attributed to it, and the
    /// transition is announced on the trace sink (a no-op with tracing
    /// off) so trace consumers can attribute the following kernel segments.
    pub fn enter(&mut self, phase: Phase) {
        self.tally.phase = phase;
        if self.sim.trace.is_on() {
            self.sim.trace.emit(TraceEvent::Phase { phase });
        }
    }

    /// The phase currently executing (the last [`enter`](Self::enter)).
    pub fn phase(&self) -> Phase {
        self.tally.phase
    }

    /// Rounds charged so far, sequentially across phases — the quantity
    /// degraded runs report as `rounds_used`.
    pub fn rounds_used(&self) -> usize {
        self.tally.rounds
    }

    /// Per-phase attribution of [`rounds_used`](Self::rounds_used); the
    /// context maintains `phase_rounds().sum() == rounds_used()`.
    pub fn phase_rounds(&self) -> PhaseRounds {
        self.tally.phases
    }

    /// Charges one phase's metrics to the sequential tally. Every phase
    /// stamps its own `phase_rounds` with `sum() == rounds`, so the tally
    /// invariant `rounds == phases.sum()` is preserved by construction.
    pub fn charge(&mut self, m: &Metrics) {
        self.tally.rounds = self.tally.rounds.saturating_add(m.rounds);
        self.tally.phases.add(m.phase_rounds);
        debug_assert_eq!(
            self.tally.rounds,
            self.tally.phases.sum(),
            "a phase left rounds unattributed in phase_rounds"
        );
    }

    /// Charges rounds a phase consumed before *aborting* (watchdog fire or
    /// round-cap hit). An aborted phase returns an error instead of
    /// `Metrics`, so without this a run killed in its first phase would
    /// report `rounds_used: 0` after burning the full watchdog budget. The
    /// charge lands in the bucket of the phase that was running — the typed
    /// [`Phase`] has a bucket for every variant by construction.
    pub fn charge_partial(&mut self, rounds: usize) {
        self.tally.rounds = self.tally.rounds.saturating_add(rounds);
        let bucket = self.tally.phases.bucket_mut(self.tally.phase);
        *bucket = bucket.saturating_add(rounds);
        debug_assert_eq!(
            self.tally.rounds,
            self.tally.phases.sum(),
            "a partial charge left rounds unattributed in phase_rounds"
        );
    }

    /// The widened configuration reliable-wrapped kernel runs execute
    /// under (see [`wrapped_budget`]).
    fn widened(&self) -> SimConfig {
        let mut cfg = self.sim.clone();
        cfg.budget_words = wrapped_budget(cfg.budget_words);
        cfg
    }

    /// Runs one protocol phase over the session graph, reliably if the
    /// context is so configured, on the configured kernel.
    ///
    /// With no reliability this is byte-for-byte [`congest_sim::run`] (the
    /// fast kernel additionally reuses the session's arc index and warm
    /// buffers, which is outcome-invariant by the simulator's contract).
    /// With reliability the programs run inside the ack/retransmit wrapper
    /// against a config whose budget is widened by [`wrapped_budget`]; the
    /// wrapper's retransmission count is folded into the returned metrics.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] exactly as [`congest_sim::run`] does.
    pub fn run_phase<P>(&mut self, programs: Vec<P>) -> Result<SimOutcome<P>, SimError>
    where
        P: NodeProgram + Send,
        P::Msg: Send + Sync + 'static,
    {
        match &self.reliability {
            None => match self.kernel {
                Kernel::Fast => self.session.run(programs, &self.sim),
                Kernel::Reference => run_reference(self.session.graph(), programs, &self.sim),
            },
            Some(rel) => {
                let wrapped_cfg = {
                    let mut cfg = self.sim.clone();
                    cfg.budget_words = wrapped_budget(cfg.budget_words);
                    cfg
                };
                let wrapped = wrap_programs(programs, rel);
                let out = match self.kernel {
                    Kernel::Fast => self.session.run(wrapped, &wrapped_cfg)?,
                    Kernel::Reference => {
                        run_reference(self.session.graph(), wrapped, &wrapped_cfg)?
                    }
                };
                Ok(unwrap_reliable(out, &wrapped_cfg))
            }
        }
    }

    /// Runs one protocol phase over a *foreign* graph — the virtual
    /// inter-part graphs of the symmetry-breaking step, which are built
    /// per merge and share nothing with the session graph. Same kernel and
    /// reliability treatment as [`run_phase`](Self::run_phase), without
    /// session reuse.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] exactly as [`congest_sim::run`] does.
    pub fn run_phase_on<P>(
        &mut self,
        g: &Graph,
        programs: Vec<P>,
    ) -> Result<SimOutcome<P>, SimError>
    where
        P: NodeProgram + Send,
        P::Msg: Send + Sync,
    {
        match (&self.reliability, self.kernel) {
            (None, Kernel::Fast) => run(g, programs, &self.sim),
            (None, Kernel::Reference) => run_reference(g, programs, &self.sim),
            (Some(rel), Kernel::Fast) => run_reliable(g, programs, &self.widened(), rel),
            (Some(rel), Kernel::Reference) => {
                let wrapped_cfg = self.widened();
                let out = run_reference(g, wrap_programs(programs, rel), &wrapped_cfg)?;
                Ok(unwrap_reliable(out, &wrapped_cfg))
            }
        }
    }

    /// Runs vertex-disjoint subproblem instances in *one* shared round
    /// lattice over the session graph — the level-synchronous scheduler's
    /// batched entry point. Per-instance metrics are bit-identical to what
    /// each instance would have cost running alone, and the kernel rejects
    /// any cross-instance message ([`SimError::CrossInstanceSend`]).
    ///
    /// With reliability, every instance's programs are wrapped before the
    /// batch and unwrapped after, with retransmissions folded per instance.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] like [`congest_sim::run_many`].
    ///
    /// # Panics
    ///
    /// Panics if instances overlap or name vertices outside the graph.
    pub fn run_phase_many<P>(
        &mut self,
        instances: Vec<Instance<P>>,
    ) -> Result<MultiOutcome<P>, SimError>
    where
        P: NodeProgram + Send,
        P::Msg: Send + Sync + 'static,
    {
        match &self.reliability {
            None => match self.kernel {
                Kernel::Fast => self.session.run_many(instances, &self.sim),
                Kernel::Reference => run_reference_many(self.session.graph(), instances, &self.sim),
            },
            Some(rel) => {
                let wrapped_cfg = {
                    let mut cfg = self.sim.clone();
                    cfg.budget_words = wrapped_budget(cfg.budget_words);
                    cfg
                };
                let wrapped = wrap_instances(instances, rel);
                let out = match self.kernel {
                    Kernel::Fast => self.session.run_many(wrapped, &wrapped_cfg)?,
                    Kernel::Reference => {
                        run_reference_many(self.session.graph(), wrapped, &wrapped_cfg)?
                    }
                };
                Ok(unwrap_reliable_many(out, &wrapped_cfg))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::protocols::LeaderBfs;
    use congest_sim::FaultPlan;
    use planar_graph::VertexId;
    use planar_lib::gen;

    fn leader_programs(g: &Graph) -> Vec<LeaderBfs> {
        g.vertices()
            .map(|v| LeaderBfs::new(v, g.neighbors(v).to_vec()))
            .collect()
    }

    fn bare<'a>(
        g: &'a Graph,
        sim: &SimConfig,
        kernel: Kernel,
        rel: Option<ReliableConfig>,
    ) -> ExecutionContext<'a> {
        let mut ctx = ExecutionContext::with_sim(g, sim);
        ctx.kernel = kernel;
        ctx.reliability = rel;
        ctx
    }

    #[test]
    fn unreliable_phase_is_plain_run() {
        let g = gen::grid(3, 3);
        let cfg = SimConfig::default();
        let mut ctx = ExecutionContext::with_sim(&g, &cfg);
        let a = ctx.run_phase(leader_programs(&g)).unwrap();
        let b = run(&g, leader_programs(&g), &cfg).unwrap();
        let view = |o: &SimOutcome<LeaderBfs>| {
            o.programs
                .iter()
                .map(|p| (p.leader(), p.parent(), p.dist()))
                .collect::<Vec<_>>()
        };
        assert_eq!(view(&a), view(&b));
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn reference_kernel_matches_fast() {
        let g = gen::triangulated_grid(3, 4);
        let cfg = SimConfig::default();
        let mut fast = bare(&g, &cfg, Kernel::Fast, None);
        let mut reference = bare(&g, &cfg, Kernel::Reference, None);
        let a = fast.run_phase(leader_programs(&g)).unwrap();
        let b = reference.run_phase(leader_programs(&g)).unwrap();
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn reliable_phase_survives_loss_on_both_kernels() {
        let g = gen::grid(3, 3);
        let cfg = SimConfig {
            faults: FaultPlan::uniform(5, 0.3, 0.05, 0.2, 2),
            ..SimConfig::default()
        };
        for kernel in [Kernel::Fast, Kernel::Reference] {
            let mut ctx = bare(&g, &cfg, kernel, Some(ReliableConfig::default()));
            let out = ctx.run_phase(leader_programs(&g)).unwrap();
            assert!(out.programs.iter().all(|p| p.leader() == VertexId(8)));
            assert!(out.metrics.dropped > 0);
        }
    }

    #[test]
    fn charges_land_in_the_entered_phase() {
        let g = gen::path(3);
        let mut ctx = ExecutionContext::with_sim(&g, &SimConfig::default());
        ctx.enter(Phase::Partition);
        ctx.charge_partial(5);
        ctx.enter(Phase::Symmetry);
        ctx.charge_partial(2);
        assert_eq!(ctx.rounds_used(), 7);
        assert_eq!(ctx.phase_rounds().partition, 5);
        assert_eq!(ctx.phase_rounds().symmetry, 2);
        assert_eq!(ctx.phase_rounds().sum(), ctx.rounds_used());
        assert_eq!(ctx.phase(), Phase::Symmetry);
    }
}
