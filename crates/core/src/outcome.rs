//! Outcome classification for shadow checks: collapses a full embedding
//! result into a small, comparable lattice of terminal classes.
//!
//! The DST harness (`crates/dst`) runs every generated scenario several
//! times — primary run, kernel-flipped shadow, thread-flipped shadow,
//! scheduler-flipped shadow — and has to answer two questions per pair:
//! *did the runs land in the same class?* and *is that class even allowed
//! for this scenario?* Matching on [`EmbedError`]'s full structure in every
//! caller would smear the classification rules across crates; this module
//! is the single authority.
//!
//! The allowed-terminal lattice (DESIGN.md §13):
//!
//! * a **fault-free** scenario on a connected planar input must end in
//!   [`OutcomeClass::Embedded`] — anything else is a harness violation;
//! * a **faulty** scenario must end in [`OutcomeClass::Embedded`],
//!   [`OutcomeClass::DegradedVerified`] or
//!   [`OutcomeClass::DegradedUnverified`] — the PR 2 graceful-degradation
//!   contract (termination with a typed result, never a hang, never an
//!   internal error);
//! * [`OutcomeClass::InvalidInput`] and [`OutcomeClass::NonPlanar`] are
//!   legitimate only when the input actually is invalid or non-planar —
//!   the DST generator registry guarantees its graphs are neither;
//! * [`OutcomeClass::Failed`] is never acceptable: it means a framework
//!   invariant or kernel contract broke outside fault mode's typed
//!   degradation path.

use crate::driver::EmbeddingOutcome;
use crate::error::{DegradedCause, EmbedError};

/// The terminal class of one embedding run. Ordering is roughly
/// "best to worst"; equality is what shadow checks compare.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum OutcomeClass {
    /// The run produced a verified embedding of the full network.
    Embedded,
    /// The run terminated under injected faults with a result that
    /// re-verified on the surviving subgraph
    /// ([`EmbedError::Degraded`] with `verified: true`).
    DegradedVerified,
    /// The run terminated under injected faults without a verifiable
    /// result ([`EmbedError::Degraded`] with `verified: false`).
    DegradedUnverified,
    /// The algorithm rejected the input as non-planar.
    NonPlanar,
    /// The input was rejected before the algorithm ran (empty,
    /// disconnected, or structurally invalid).
    InvalidInput,
    /// The run failed with an internal/simulation/routing error — a bug
    /// surfaced, not a legitimate terminal state.
    Failed,
}

impl OutcomeClass {
    /// Classifies a full embedding result.
    pub fn of(result: &Result<EmbeddingOutcome, EmbedError>) -> OutcomeClass {
        match result {
            Ok(_) => OutcomeClass::Embedded,
            Err(EmbedError::NonPlanar) => OutcomeClass::NonPlanar,
            Err(EmbedError::Disconnected | EmbedError::EmptyGraph | EmbedError::Graph(_)) => {
                OutcomeClass::InvalidInput
            }
            Err(EmbedError::Degraded { verified: true, .. }) => OutcomeClass::DegradedVerified,
            Err(EmbedError::Degraded {
                verified: false, ..
            }) => OutcomeClass::DegradedUnverified,
            // `EmbedError` is non-exhaustive downstream but this is its
            // defining crate: adding a variant forces a decision here.
            Err(EmbedError::Sim(_) | EmbedError::Routing(_) | EmbedError::Internal(_)) => {
                OutcomeClass::Failed
            }
        }
    }

    /// A short stable identifier for artifacts and log lines.
    pub fn code(self) -> &'static str {
        match self {
            OutcomeClass::Embedded => "embedded",
            OutcomeClass::DegradedVerified => "degraded-verified",
            OutcomeClass::DegradedUnverified => "degraded-unverified",
            OutcomeClass::NonPlanar => "non-planar",
            OutcomeClass::InvalidInput => "invalid-input",
            OutcomeClass::Failed => "failed",
        }
    }

    /// Whether this class is an allowed terminal for a scenario on a
    /// connected planar input: always [`OutcomeClass::Embedded`]; the two
    /// degraded classes only when faults were injected (`faulty`).
    pub fn allowed_on_planar_input(self, faulty: bool) -> bool {
        match self {
            OutcomeClass::Embedded => true,
            OutcomeClass::DegradedVerified | OutcomeClass::DegradedUnverified => faulty,
            OutcomeClass::NonPlanar | OutcomeClass::InvalidInput | OutcomeClass::Failed => false,
        }
    }
}

/// A stable fingerprint of a degraded run for bit-identity comparison:
/// `(surviving_nodes, rounds_used, verified, cause discriminant name)`.
/// `None` for every non-degraded result.
///
/// Kernel- and thread-flipped shadow runs must agree on *all four* fields
/// (both kernels replay the identical fault schedule); scheduler-flipped
/// runs compare everything except `rounds_used` — once a mid-run abort
/// interleaves instances differently, the two schedulers legitimately
/// charge different partial tallies (see `core/tests/scheduler.rs`).
pub fn degraded_fingerprint(
    result: &Result<EmbeddingOutcome, EmbedError>,
) -> Option<(usize, usize, bool, &'static str)> {
    match result {
        Err(EmbedError::Degraded {
            surviving_nodes,
            rounds_used,
            verified,
            cause,
        }) => {
            let cause_code = match cause {
                DegradedCause::Sim(_) => "sim",
                DegradedCause::PhaseIncomplete { phase } => phase,
                DegradedCause::OutputUnverified => "output-unverified",
                DegradedCause::SurvivorsOnly => "survivors-only",
            };
            Some((*surviving_nodes, *rounds_used, *verified, cause_code))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::SimError;

    fn degraded(verified: bool, cause: DegradedCause) -> Result<EmbeddingOutcome, EmbedError> {
        Err(EmbedError::Degraded {
            surviving_nodes: 5,
            rounds_used: 17,
            verified,
            cause,
        })
    }

    #[test]
    fn classification_covers_the_error_lattice() {
        assert_eq!(
            OutcomeClass::of(&Err(EmbedError::NonPlanar)),
            OutcomeClass::NonPlanar
        );
        assert_eq!(
            OutcomeClass::of(&Err(EmbedError::Disconnected)),
            OutcomeClass::InvalidInput
        );
        assert_eq!(
            OutcomeClass::of(&Err(EmbedError::EmptyGraph)),
            OutcomeClass::InvalidInput
        );
        assert_eq!(
            OutcomeClass::of(&Err(EmbedError::Internal("x".into()))),
            OutcomeClass::Failed
        );
        assert_eq!(
            OutcomeClass::of(&Err(EmbedError::Sim(SimError::WatchdogTimeout {
                limit: 3
            }))),
            OutcomeClass::Failed
        );
        assert_eq!(
            OutcomeClass::of(&degraded(true, DegradedCause::SurvivorsOnly)),
            OutcomeClass::DegradedVerified
        );
        assert_eq!(
            OutcomeClass::of(&degraded(false, DegradedCause::OutputUnverified)),
            OutcomeClass::DegradedUnverified
        );
    }

    #[test]
    fn lattice_admits_degradation_only_under_faults() {
        assert!(OutcomeClass::Embedded.allowed_on_planar_input(false));
        assert!(OutcomeClass::Embedded.allowed_on_planar_input(true));
        assert!(!OutcomeClass::DegradedVerified.allowed_on_planar_input(false));
        assert!(OutcomeClass::DegradedVerified.allowed_on_planar_input(true));
        assert!(!OutcomeClass::DegradedUnverified.allowed_on_planar_input(false));
        assert!(OutcomeClass::DegradedUnverified.allowed_on_planar_input(true));
        for class in [
            OutcomeClass::NonPlanar,
            OutcomeClass::InvalidInput,
            OutcomeClass::Failed,
        ] {
            assert!(!class.allowed_on_planar_input(false), "{class:?}");
            assert!(!class.allowed_on_planar_input(true), "{class:?}");
        }
    }

    #[test]
    fn codes_are_distinct() {
        let classes = [
            OutcomeClass::Embedded,
            OutcomeClass::DegradedVerified,
            OutcomeClass::DegradedUnverified,
            OutcomeClass::NonPlanar,
            OutcomeClass::InvalidInput,
            OutcomeClass::Failed,
        ];
        let codes: std::collections::HashSet<_> = classes.iter().map(|c| c.code()).collect();
        assert_eq!(codes.len(), classes.len());
    }

    #[test]
    fn degraded_fingerprint_extracts_all_fields() {
        let fp = degraded_fingerprint(&degraded(
            false,
            DegradedCause::Sim(SimError::WatchdogTimeout { limit: 9 }),
        ))
        .unwrap();
        assert_eq!(fp, (5, 17, false, "sim"));
        let fp = degraded_fingerprint(&degraded(
            false,
            DegradedCause::PhaseIncomplete { phase: "setup" },
        ))
        .unwrap();
        assert_eq!(fp.3, "setup");
        assert_eq!(degraded_fingerprint(&Err(EmbedError::NonPlanar)), None);
    }
}
