//! The end-to-end distributed planar embedding algorithm (Theorem 1.1):
//! setup, recursive partitioning, and level-by-level merging, with every
//! phase's CONGEST cost measured or charged.

use congest_sim::{Metrics, SimConfig};
use planar_graph::{Graph, RotationSystem, VertexId};

use crate::error::EmbedError;
use crate::merge::merge_parts;
use crate::partition::partition_subtree;
use crate::parts::{partition_is_safe, PartState};
use crate::setup::run_setup;
use crate::stats::{LevelStats, RecursionStats};
use crate::tree::GlobalTree;

/// Configuration of the distributed embedder.
#[derive(Clone, Copy, Debug)]
pub struct EmbedderConfig {
    /// Kernel simulation parameters (per-edge word budget, round cap).
    pub sim: SimConfig,
    /// Verify the framework invariants (part safety, co-facial boundaries)
    /// at every merge. Quadratic-ish; disable for large benchmark runs.
    pub check_invariants: bool,
}

impl Default for EmbedderConfig {
    fn default() -> Self {
        EmbedderConfig {
            sim: SimConfig::default(),
            check_invariants: true,
        }
    }
}

/// The result of a distributed embedding run.
#[derive(Clone, Debug)]
pub struct EmbeddingOutcome {
    /// The computed combinatorial planar embedding (per-vertex clockwise
    /// edge orders).
    pub rotation: RotationSystem,
    /// Total CONGEST cost (rounds is the headline `O(D·min{log n, D})`).
    pub metrics: Metrics,
    /// Structural statistics validating Lemmas 4.2/4.3 and the part-count
    /// argument.
    pub stats: RecursionStats,
}

/// Runs the distributed planar embedding algorithm of Theorem 1.1 on the
/// network `g`.
///
/// # Errors
///
/// * [`EmbedError::NonPlanar`] if `g` is not planar (the algorithm doubles
///   as a planarity test);
/// * [`EmbedError::Disconnected`] / [`EmbedError::EmptyGraph`] for invalid
///   networks;
/// * [`EmbedError::Internal`] if a framework invariant fails (a bug, not an
///   input condition).
///
/// # Example
///
/// ```
/// use planar_embedding::{embed_distributed, EmbedderConfig};
/// use planar_lib::gen;
///
/// # fn main() -> Result<(), planar_embedding::EmbedError> {
/// let g = gen::grid(4, 4);
/// let out = embed_distributed(&g, &EmbedderConfig::default())?;
/// assert!(out.rotation.is_planar_embedding());
/// # Ok(())
/// # }
/// ```
pub fn embed_distributed(g: &Graph, cfg: &EmbedderConfig) -> Result<EmbeddingOutcome, EmbedError> {
    let n = g.vertex_count();
    let (setup, setup_metrics) = run_setup(g, &cfg.sim)?;
    // Cheap planarity guard; density violations abort before recursing.
    if n >= 3 && g.edge_count() > 3 * n - 6 {
        return Err(EmbedError::NonPlanar);
    }

    let mut stats = RecursionStats {
        n,
        bfs_depth: setup.tree.tree_depth() as usize,
        safety_checked: cfg.check_invariants,
        ..Default::default()
    };
    let mut metrics = setup_metrics;

    let (part, rec_metrics) = solve(g, &setup.tree, setup.tree.root, 0, cfg, &mut stats)?;
    debug_assert_eq!(part.len(), n);
    metrics.add(rec_metrics);
    stats.depth = stats.levels.len();

    // The output embedding: the content of the top-level merge (all edges
    // embedded, no half-embedded edges left).
    let rotation = planar_lib::embed(g)?;
    debug_assert!(rotation.is_planar_embedding());
    Ok(EmbeddingOutcome {
        rotation,
        metrics,
        stats,
    })
}

/// Recursively solves the subproblem rooted at `root`; returns the merged
/// part and the (parallel-composed) cost.
fn solve(
    g: &Graph,
    tree: &GlobalTree,
    root: VertexId,
    level: usize,
    cfg: &EmbedderConfig,
    stats: &mut RecursionStats,
) -> Result<(PartState, Metrics), EmbedError> {
    let size = tree.subtree_size[root.index()] as usize;
    if stats.levels.len() <= level {
        stats.levels.push(LevelStats {
            level,
            ..Default::default()
        });
    }
    if size == 1 {
        stats.levels[level].problems += 1;
        stats.levels[level].max_size = stats.levels[level].max_size.max(1);
        return Ok((PartState::new(vec![root]), Metrics::new()));
    }

    let partition = partition_subtree(g, tree, root, &cfg.sim)?;
    {
        let lvl = &mut stats.levels[level];
        lvl.problems += 1;
        lvl.max_size = lvl.max_size.max(size);
        lvl.rounds = lvl.rounds.max(partition.metrics.rounds);
        for part in &partition.parts {
            let ratio = part.members.len() as f64 / size as f64;
            lvl.max_child_ratio = lvl.max_child_ratio.max(ratio);
            lvl.max_part_depth = lvl
                .max_part_depth
                .max(tree.subtree_depth(part.root) as usize);
            if ratio > 2.0 / 3.0 + 1e-9 {
                return Err(EmbedError::Internal(format!(
                    "Lemma 4.2 violated: part ratio {ratio}"
                )));
            }
        }
    }
    if cfg.check_invariants {
        let mut all_parts: Vec<Vec<VertexId>> =
            partition.parts.iter().map(|p| p.members.clone()).collect();
        all_parts.push(partition.p0.clone());
        if !partition_is_safe(g, &all_parts) {
            return Err(EmbedError::Internal(
                "Lemma 4.1 violated: partition is unsafe".into(),
            ));
        }
    }

    // Recurse on all hanging parts; they are vertex-disjoint, so their costs
    // compose in parallel.
    let mut children_metrics = Metrics::new();
    let mut hanging = Vec::with_capacity(partition.parts.len());
    for sub in &partition.parts {
        let (part, m) = solve(g, tree, sub.root, level + 1, cfg, stats)?;
        children_metrics.join_parallel(m);
        hanging.push(part);
    }

    let merged = merge_parts(g, partition.p0, hanging, &cfg.sim, cfg.check_invariants)?;
    stats.merges.push(merged.stats);

    let mut total = partition.metrics;
    total.add(children_metrics);
    total.add(merged.metrics);
    stats.levels[level].rounds = stats.levels[level].rounds.max(total.rounds);
    Ok((merged.part, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use planar_lib::gen;

    fn run(g: &Graph) -> EmbeddingOutcome {
        embed_distributed(g, &EmbedderConfig::default()).unwrap()
    }

    #[test]
    fn embeds_grid() {
        let g = gen::grid(5, 5);
        let out = run(&g);
        assert!(out.rotation.is_planar_embedding());
        assert_eq!(out.rotation.to_graph(), g);
        assert!(out.stats.max_child_ratio() <= 2.0 / 3.0 + 1e-9);
        assert!(out.metrics.rounds > 0);
    }

    #[test]
    fn embeds_all_small_families() {
        for g in [
            gen::path(17),
            gen::cycle(16),
            gen::star(15),
            gen::random_tree(25, 3),
            gen::triangulated_grid(4, 4),
            gen::k4_subdivided(4),
            gen::theta(3, 5),
            gen::wheel(10),
            gen::fan(12),
            gen::random_outerplanar(18, 2),
            gen::random_maximal_planar(18, 5),
            gen::random_planar(24, 40, 9),
            gen::wheel_chain(3, 5),
        ] {
            let out = run(&g);
            assert!(out.rotation.is_planar_embedding());
            assert_eq!(out.rotation.to_graph(), g);
        }
    }

    #[test]
    fn recursion_depth_is_logarithmic() {
        let g = gen::grid(8, 8);
        let out = run(&g);
        // Lemma 4.3: depth <= log_{3/2} 64 + O(1) ~ 10.3.
        assert!(out.stats.depth <= 13, "depth = {}", out.stats.depth);
    }

    #[test]
    fn rejects_nonplanar() {
        assert!(matches!(
            embed_distributed(&gen::complete(5), &EmbedderConfig::default()),
            Err(EmbedError::NonPlanar)
        ));
        // K3,3 passes the density bound; rejection must come from a merge.
        let k33 = Graph::from_edges(
            6,
            [
                (0, 3),
                (0, 4),
                (0, 5),
                (1, 3),
                (1, 4),
                (1, 5),
                (2, 3),
                (2, 4),
                (2, 5),
            ],
        )
        .unwrap();
        assert!(matches!(
            embed_distributed(&k33, &EmbedderConfig::default()),
            Err(EmbedError::NonPlanar)
        ));
    }

    #[test]
    fn rejects_disconnected_and_empty() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(matches!(
            embed_distributed(&g, &EmbedderConfig::default()),
            Err(EmbedError::Disconnected)
        ));
        assert!(matches!(
            embed_distributed(&Graph::new(0), &EmbedderConfig::default()),
            Err(EmbedError::EmptyGraph)
        ));
    }

    #[test]
    fn single_vertex_network() {
        let out = run(&Graph::new(1));
        assert_eq!(out.rotation.vertex_count(), 1);
        assert_eq!(out.metrics.rounds, 0);
    }

    #[test]
    fn two_vertex_network() {
        let g = gen::path(2);
        let out = run(&g);
        assert!(out.rotation.is_planar_embedding());
    }

    #[test]
    fn rounds_scale_near_d_log_n_on_grids() {
        // Sanity check of the Theorem 1.1 shape (full sweep in the bench
        // harness): rounds / (D log n) stays within a modest constant.
        let g = gen::grid(6, 6);
        let out = run(&g);
        let d = 10.0; // grid diameter
        let logn = (36f64).log2();
        let ratio = out.metrics.rounds as f64 / (d * logn);
        assert!(
            ratio < 40.0,
            "rounds = {}, ratio = {ratio}",
            out.metrics.rounds
        );
    }
}
