//! The end-to-end distributed planar embedding algorithm (Theorem 1.1):
//! setup, recursive partitioning, and level-by-level merging, with every
//! phase's CONGEST cost measured or charged.
//!
//! Two schedulers drive the Section 4 recursion (selected by
//! [`EmbedderConfig::scheduler`]):
//!
//! * [`Scheduler::LevelSync`] (the default) is *level-synchronous*: it
//!   collects every same-level subproblem and partitions all of them in
//!   one batched kernel invocation ([`partition_level`]) over
//!   vertex-disjoint instances, then runs all merges bottom-up. Host-side
//!   cost per level is proportional to the level's total subproblem size.
//! * [`Scheduler::Sequential`] is the original depth-first recursion, one
//!   full-graph kernel run per subproblem phase — the conformance oracle.
//!
//! Both produce bit-identical rotations, metrics, statistics and
//! certification verdicts (`tests/scheduler.rs`); the round tally composes
//! identically because charging is order-independent and batched
//! per-instance metrics equal the one-at-a-time runs.
//!
//! **Fidelity note** (see DESIGN.md): the distributed recursion computes,
//! charges, and validates the full partition/merge structure, but the
//! *final* rotation handed to the caller is produced by the centralized
//! solver [`planar_lib::embed`] on the whole graph — the stand-in for
//! reading the rotation out of the top-level merged part, whose content
//! the coordinator-side skeleton solver computed piecewise. The
//! `merged_part_covers_graph_and_matches_centralized_blocks` regression
//! pins the agreement between the two.

use congest_sim::{Metrics, Phase, SimConfig, SimError};
use planar_graph::{Graph, RotationSystem, VertexId};

use crate::error::{DegradedCause, EmbedError};
use crate::exec::ExecutionContext;
use crate::merge::merge_parts_ctx;
use crate::partition::{partition_level, partition_subtree_ctx, Partition};
use crate::parts::{partition_is_safe, PartState};
use crate::resilience::auto_watchdog;
use crate::setup::run_setup_ctx;
use crate::stats::{LevelStats, MergeStats, RecursionStats};
use crate::tree::GlobalTree;
use crate::verify::verify_surviving_embedding;
use crate::{Kernel, Scheduler};

/// Configuration of the distributed embedder.
#[derive(Clone, Debug)]
pub struct EmbedderConfig {
    /// Kernel simulation parameters (per-edge word budget, round cap,
    /// fault plan, watchdog).
    pub sim: SimConfig,
    /// Verify the framework invariants (part safety, co-facial boundaries)
    /// at every merge. Quadratic-ish; disable for large benchmark runs.
    pub check_invariants: bool,
    /// Lift every kernel phase into the acknowledgement/retransmission
    /// wrapper ([`congest_sim::protocols::Reliable`]). `None` (the default)
    /// runs the phases bare; combine `Some(..)` with a fault plan on `sim`
    /// to survive lossy links.
    pub reliability: Option<congest_sim::protocols::ReliableConfig>,
    /// Append a distributed certification phase: build `O(Δ log n)`-bit
    /// per-node certificates for the computed rotation and run the
    /// O(1)-round local verifier ([`crate::certify_embedding`]) on the
    /// same simulated network. The outcome then carries the certificates
    /// and the per-node verdicts in
    /// [`EmbeddingOutcome::certification`]; in fault mode, degraded
    /// results additionally audit the surviving subgraph distributedly
    /// before reporting `verified: true`.
    pub certify: bool,
    /// Which simulation kernel executes the phases: the allocation-free
    /// CSR kernel (default) or the executable-spec reference kernel.
    pub kernel: Kernel,
    /// How the driver walks the recursion: level-synchronous batching
    /// (default) or the original one-run-per-subproblem depth-first
    /// recursion. Outputs are bit-identical either way.
    pub scheduler: Scheduler,
}

impl Default for EmbedderConfig {
    fn default() -> Self {
        EmbedderConfig {
            sim: SimConfig::default(),
            check_invariants: true,
            reliability: None,
            certify: false,
            kernel: Kernel::default(),
            scheduler: Scheduler::default(),
        }
    }
}

/// The result of a distributed embedding run.
#[derive(Clone, Debug)]
pub struct EmbeddingOutcome {
    /// The computed combinatorial planar embedding (per-vertex clockwise
    /// edge orders).
    pub rotation: RotationSystem,
    /// Total CONGEST cost (rounds is the headline `O(D·min{log n, D})`).
    pub metrics: Metrics,
    /// Structural statistics validating Lemmas 4.2/4.3 and the part-count
    /// argument.
    pub stats: RecursionStats,
    /// Distributed certification artifacts (certificates + per-node
    /// verdicts), present iff [`EmbedderConfig::certify`] was set. The
    /// run only succeeds if every node accepted.
    pub certification: Option<crate::certify::Certification>,
}

/// Runs the distributed planar embedding algorithm of Theorem 1.1 on the
/// network `g`.
///
/// # Errors
///
/// * [`EmbedError::NonPlanar`] if `g` is not planar (the algorithm doubles
///   as a planarity test);
/// * [`EmbedError::Disconnected`] / [`EmbedError::EmptyGraph`] for invalid
///   networks;
/// * [`EmbedError::Internal`] if a framework invariant fails (a bug, not an
///   input condition).
///
/// # Example
///
/// ```
/// use planar_embedding::{embed_distributed, EmbedderConfig};
/// use planar_lib::gen;
///
/// # fn main() -> Result<(), planar_embedding::EmbedError> {
/// let g = gen::grid(4, 4);
/// let out = embed_distributed(&g, &EmbedderConfig::default())?;
/// assert!(out.rotation.is_planar_embedding());
/// # Ok(())
/// # }
/// ```
pub fn embed_distributed(g: &Graph, cfg: &EmbedderConfig) -> Result<EmbeddingOutcome, EmbedError> {
    let fault_mode = !cfg.sim.faults.is_empty();
    if !fault_mode {
        // Perfect network: the original code path, bit for bit (the fault
        // subsystem must cost nothing when unused).
        let mut ctx = ExecutionContext::new(g, cfg);
        return embed_inner(g, cfg, &mut ctx);
    }

    // Fault mode: arm the watchdog (unless the caller chose one) so lossy
    // phases terminate, run, and translate every failure into the typed
    // degradation report instead of surfacing internal errors.
    let mut hardened = cfg.clone();
    if hardened.sim.watchdog.is_none() {
        hardened.sim.watchdog = Some(auto_watchdog(g.vertex_count()));
    }
    let mut ctx = ExecutionContext::new(g, &hardened);
    let surviving_nodes = g.vertex_count() - cfg.sim.faults.crash_victims().len();
    match embed_inner(g, &hardened, &mut ctx) {
        Ok(out) => {
            // Post-run self-verification: in fault mode a "successful" run
            // still only counts if the rotation restricted to the surviving
            // subgraph certifies as planar.
            let crashed = cfg.sim.faults.crash_victims();
            match verify_surviving_embedding(g, &out.rotation, &crashed) {
                // If any node actually crash-stopped mid-run, the result
                // covers only the survivors — report it as a (verified)
                // degradation rather than letting it pass for a full
                // embedding. Crash victims whose scheduled round was never
                // reached participated normally and do not degrade. With
                // certification enabled, `verified: true` additionally
                // requires the survivors' own distributed audit
                // ([`crate::certify_surviving_embedding`]) to accept.
                Ok(()) if out.metrics.crashed_nodes > 0 => {
                    let distributed_ok = !cfg.certify
                        || crate::certify::certify_surviving_embedding(
                            g,
                            &out.rotation,
                            &crashed,
                            cfg,
                        )
                        .map(|c| c.accepted())
                        .unwrap_or(false);
                    Err(EmbedError::Degraded {
                        surviving_nodes,
                        rounds_used: ctx.rounds_used(),
                        verified: distributed_ok,
                        cause: if distributed_ok {
                            DegradedCause::SurvivorsOnly
                        } else {
                            DegradedCause::OutputUnverified
                        },
                    })
                }
                Ok(()) => Ok(out),
                Err(_) => Err(EmbedError::Degraded {
                    surviving_nodes,
                    rounds_used: ctx.rounds_used(),
                    verified: false,
                    cause: DegradedCause::OutputUnverified,
                }),
            }
        }
        // Input conditions a fault-free run would also report: pass through.
        Err(e @ (EmbedError::EmptyGraph | EmbedError::Graph(_))) => Err(e),
        // Kernel aborts (watchdog, crashed-destination sends) keep their
        // typed error as the cause, losslessly. Round-limit aborts report
        // how many rounds the dying phase actually ran; charge them so
        // `rounds_used` reflects the work done, not zero.
        Err(EmbedError::Sim(e)) => {
            if let SimError::WatchdogTimeout { limit } | SimError::MaxRoundsExceeded { limit } = e {
                ctx.charge_partial(limit);
            }
            Err(EmbedError::Degraded {
                surviving_nodes,
                rounds_used: ctx.rounds_used(),
                verified: false,
                cause: DegradedCause::Sim(e),
            })
        }
        // Everything else — a convergecast that missed the root
        // (`Internal`), leader election that never converged
        // (`Disconnected`), a merge handed fault-corrupted part state
        // (`NonPlanar`, `Routing`, invariant violations) — is the phase
        // coming up short because of injected faults. No embedding was
        // produced, so nothing could be re-verified.
        Err(_) => Err(EmbedError::Degraded {
            surviving_nodes,
            rounds_used: ctx.rounds_used(),
            verified: false,
            cause: DegradedCause::PhaseIncomplete {
                phase: ctx.phase().name(),
            },
        }),
    }
}

/// The distributed pipeline shared by [`embed_distributed`] and
/// [`embed_recursion`]: setup, the density guard, and the scheduled
/// partition/merge recursion. Returns the merged top-level part, the
/// parallel-composed metrics (setup included), and the recursion
/// statistics with `depth` stamped; the sequential-tally stamps are left
/// to the caller, whose epilogue may still charge rounds.
fn run_recursion(
    g: &Graph,
    cfg: &EmbedderConfig,
    ctx: &mut ExecutionContext<'_>,
) -> Result<(PartState, Metrics, RecursionStats), EmbedError> {
    let n = g.vertex_count();
    ctx.enter(Phase::Setup);
    let (setup, setup_metrics) = run_setup_ctx(ctx)?;
    ctx.charge(&setup_metrics);
    // Cheap planarity guard; density violations abort before recursing.
    if n >= 3 && g.edge_count() > 3 * n - 6 {
        return Err(EmbedError::NonPlanar);
    }

    let mut stats = RecursionStats {
        n,
        bfs_depth: setup.tree.tree_depth() as usize,
        safety_checked: cfg.check_invariants,
        ..Default::default()
    };
    let mut metrics = setup_metrics;

    let (part, rec_metrics) = match cfg.scheduler {
        Scheduler::Sequential => {
            solve_sequential(g, &setup.tree, setup.tree.root, 0, cfg, &mut stats, ctx)?
        }
        Scheduler::LevelSync => solve_level_sync(g, &setup.tree, cfg, &mut stats, ctx)?,
    };
    if part.len() != n {
        // Message loss can leave the merged top-level part short of
        // vertices with every phase reporting success; surface a typed
        // failure so fault mode degrades to `PhaseIncomplete` instead of
        // asserting (found by the DST swarm, `crates/dst`). A fault-free
        // run can never trip this — there it is a genuine bug report.
        return Err(EmbedError::Internal(format!(
            "recursion merged only {} of {n} vertices",
            part.len()
        )));
    }
    metrics.add(rec_metrics);
    stats.depth = stats.levels.len();
    Ok((part, metrics, stats))
}

/// [`run_recursion`] with every intermediate artifact retained: the
/// global BFS tree from setup and the full level-synchronous recursion
/// arena, alongside the usual metrics and statistics. This is the driver
/// entry point the incremental re-embedding path builds its resident
/// state from (always [`Scheduler::LevelSync`] — the arena *is* the
/// level-synchronous recursion).
pub(crate) fn run_recursion_retained(
    g: &Graph,
    cfg: &EmbedderConfig,
    ctx: &mut ExecutionContext<'_>,
) -> Result<(GlobalTree, Vec<RecNode>, Metrics, RecursionStats), EmbedError> {
    let n = g.vertex_count();
    ctx.enter(Phase::Setup);
    let (setup, setup_metrics) = run_setup_ctx(ctx)?;
    ctx.charge(&setup_metrics);
    if n >= 3 && g.edge_count() > 3 * n - 6 {
        return Err(EmbedError::NonPlanar);
    }

    let mut stats = RecursionStats {
        n,
        bfs_depth: setup.tree.tree_depth() as usize,
        safety_checked: cfg.check_invariants,
        ..Default::default()
    };
    let mut metrics = setup_metrics;
    let nodes = solve_level_sync_retained(g, &setup.tree, cfg, &mut stats, ctx)?;
    let merged = nodes[0].part.as_ref().expect("root solved").len();
    if merged != n {
        return Err(EmbedError::Internal(format!(
            "recursion merged only {merged} of {n} vertices"
        )));
    }
    metrics.add(nodes[0].metrics);
    stats.depth = stats.levels.len();
    Ok((setup.tree, nodes, metrics, stats))
}

/// Runs only the distributed pipeline — setup plus the scheduled
/// partition/merge recursion — skipping the centralized fidelity epilogue
/// (see the module-level note) and certification. This is the unit the
/// scheduler benchmark times: host wall time here is what
/// [`EmbedderConfig::scheduler`] actually controls; timing
/// [`embed_distributed`] instead would let the scheduler-independent
/// centralized epilogue dominate at large `n`.
///
/// # Errors
///
/// As [`embed_distributed`], minus certification failures (there is no
/// certification phase). Fault plans are honored but failures surface as
/// their raw typed errors, not as [`EmbedError::Degraded`] reports.
pub fn embed_recursion(
    g: &Graph,
    cfg: &EmbedderConfig,
) -> Result<(Metrics, RecursionStats), EmbedError> {
    let mut ctx = ExecutionContext::new(g, cfg);
    let (_part, metrics, mut stats) = run_recursion(g, cfg, &mut ctx)?;
    stats.sequential_rounds = ctx.rounds_used();
    stats.phase_rounds = ctx.phase_rounds();
    Ok((metrics, stats))
}

/// [`embed_recursion`] plus the bytes retained by the execution context's
/// kernel arenas when the recursion finishes — the figure the bench
/// harness's memory stage records as `kernel_bytes`. Kept out of
/// [`RecursionStats`] on purpose: retained capacity is a host-side
/// property of the arena, not part of the scheduler-conformance contract
/// (the two schedulers retain different arenas while producing
/// bit-identical stats).
pub fn embed_recursion_with_memory(
    g: &Graph,
    cfg: &EmbedderConfig,
) -> Result<(Metrics, RecursionStats, usize), EmbedError> {
    let mut ctx = ExecutionContext::new(g, cfg);
    let (_part, metrics, mut stats) = run_recursion(g, cfg, &mut ctx)?;
    stats.sequential_rounds = ctx.rounds_used();
    stats.phase_rounds = ctx.phase_rounds();
    let kernel_bytes = ctx.memory_bytes();
    Ok((metrics, stats, kernel_bytes))
}

fn embed_inner(
    g: &Graph,
    cfg: &EmbedderConfig,
    ctx: &mut ExecutionContext<'_>,
) -> Result<EmbeddingOutcome, EmbedError> {
    let (_part, mut metrics, mut stats) = run_recursion(g, cfg, ctx)?;

    // The output embedding: the content of the top-level merge (all edges
    // embedded, no half-embedded edges left). See the module-level fidelity
    // note: the rotation itself comes from the centralized solver.
    let rotation = planar_lib::embed(g)?;
    debug_assert!(rotation.is_planar_embedding());

    // Optional distributed certification epilogue: the O(1)-round proof-
    // labeling verifier runs on the same simulated network (same fault
    // plan, reliability, and kernel), so its cost lands in the tally like
    // any other phase.
    let certification = if cfg.certify {
        ctx.enter(Phase::Cert);
        let cert = crate::certify::certify_embedding(g, &rotation, cfg)?;
        ctx.charge(&cert.report.metrics);
        metrics.add(cert.report.metrics);
        if !cert.accepted() {
            return Err(EmbedError::Internal(format!(
                "distributed certification rejected the embedding: rejections {:?}, incomplete {:?}",
                cert.report.rejections, cert.report.incomplete
            )));
        }
        Some(cert)
    } else {
        None
    };

    stats.sequential_rounds = ctx.rounds_used();
    stats.phase_rounds = ctx.phase_rounds();
    Ok(EmbeddingOutcome {
        rotation,
        metrics,
        stats,
        certification,
    })
}

/// Records one subproblem's partition in the per-level statistics and
/// validates Lemmas 4.1/4.2 — shared verbatim by both schedulers so their
/// statistics agree field for field.
fn note_partition(
    g: &Graph,
    tree: &GlobalTree,
    size: usize,
    level: usize,
    partition: &Partition,
    cfg: &EmbedderConfig,
    stats: &mut RecursionStats,
) -> Result<(), EmbedError> {
    {
        let lvl = &mut stats.levels[level];
        lvl.problems += 1;
        lvl.max_size = lvl.max_size.max(size);
        lvl.rounds = lvl.rounds.max(partition.metrics.rounds);
        for part in &partition.parts {
            let ratio = part.members.len() as f64 / size as f64;
            lvl.max_child_ratio = lvl.max_child_ratio.max(ratio);
            lvl.max_part_depth = lvl
                .max_part_depth
                .max(tree.subtree_depth(part.root) as usize);
        }
    }
    validate_partition(g, size, partition, cfg)
}

/// The Lemma 4.1/4.2 gate on one subproblem's partition, shared by both
/// schedulers and the incremental rebuild: every hanging part must stay
/// within the 2/3 ratio, and (under `check_invariants`) the partition
/// must be safe in the Definition 3.1 sense.
pub(crate) fn validate_partition(
    g: &Graph,
    size: usize,
    partition: &Partition,
    cfg: &EmbedderConfig,
) -> Result<(), EmbedError> {
    for part in &partition.parts {
        let ratio = part.members.len() as f64 / size as f64;
        if ratio > 2.0 / 3.0 + 1e-9 {
            return Err(EmbedError::Internal(format!(
                "Lemma 4.2 violated: part ratio {ratio}"
            )));
        }
    }
    if cfg.check_invariants {
        let mut all_parts: Vec<Vec<VertexId>> =
            partition.parts.iter().map(|p| p.members.clone()).collect();
        all_parts.push(partition.p0.clone());
        if !partition_is_safe(g, &all_parts) {
            return Err(EmbedError::Internal(
                "Lemma 4.1 violated: partition is unsafe".into(),
            ));
        }
    }
    Ok(())
}

/// Records a size-1 subproblem (a recursion leaf) in the level statistics
/// and returns its trivial solution.
fn solve_leaf(root: VertexId, level: usize, stats: &mut RecursionStats) -> (PartState, Metrics) {
    stats.levels[level].problems += 1;
    stats.levels[level].max_size = stats.levels[level].max_size.max(1);
    (PartState::new(vec![root]), Metrics::new())
}

/// Makes sure `stats.levels` reaches `level`.
fn ensure_level(stats: &mut RecursionStats, level: usize) {
    if stats.levels.len() <= level {
        stats.levels.push(LevelStats {
            level,
            ..Default::default()
        });
    }
}

/// [`Scheduler::Sequential`]: recursively solves the subproblem rooted at
/// `root`, one kernel invocation per phase; returns the merged part and
/// the (parallel-composed) cost. The conformance oracle for
/// [`solve_level_sync`].
fn solve_sequential(
    g: &Graph,
    tree: &GlobalTree,
    root: VertexId,
    level: usize,
    cfg: &EmbedderConfig,
    stats: &mut RecursionStats,
    ctx: &mut ExecutionContext<'_>,
) -> Result<(PartState, Metrics), EmbedError> {
    let size = tree.subtree_size[root.index()] as usize;
    ensure_level(stats, level);
    if size == 1 {
        return Ok(solve_leaf(root, level, stats));
    }

    ctx.enter(Phase::Partition);
    let partition = partition_subtree_ctx(ctx, tree, root)?;
    ctx.charge(&partition.metrics);
    note_partition(g, tree, size, level, &partition, cfg, stats)?;

    // Recurse on all hanging parts; they are vertex-disjoint, so their costs
    // compose in parallel.
    let mut children_metrics = Metrics::new();
    let mut hanging = Vec::with_capacity(partition.parts.len());
    for sub in &partition.parts {
        let (part, m) = solve_sequential(g, tree, sub.root, level + 1, cfg, stats, ctx)?;
        children_metrics.join_parallel(m);
        hanging.push(part);
    }

    ctx.enter(Phase::Merge);
    let merged = merge_parts_ctx(ctx, partition.p0, hanging, cfg.check_invariants)?;
    ctx.charge(&merged.metrics);
    stats.merges.push(merged.stats);

    let mut total = partition.metrics;
    total.add(children_metrics);
    total.add(merged.metrics);
    stats.levels[level].rounds = stats.levels[level].rounds.max(total.rounds);
    Ok((merged.part, total))
}

/// One subproblem of the level-synchronous recursion arena.
///
/// The arena is *retained*: after a run, every node still holds its
/// partition, solved part, and merge statistics (nothing is `take()`n in
/// the merge pass). That makes the arena a resumable artifact — the
/// incremental re-embedding path (`crate::incremental`) re-runs only the
/// merges of nodes whose subtree contains a delta endpoint and reuses
/// every other node's retained state verbatim.
pub(crate) struct RecNode {
    pub(crate) root: VertexId,
    pub(crate) level: usize,
    pub(crate) children: Vec<usize>,
    /// `Some` for internal nodes after their level's batched partition.
    pub(crate) partition: Option<Partition>,
    /// The solved part; set for leaves immediately, for internal nodes by
    /// the bottom-up merge pass.
    pub(crate) part: Option<PartState>,
    /// Parallel-composed cost of this subtree (partition + children in
    /// parallel + merge) — identical to what [`solve_sequential`] returns.
    pub(crate) metrics: Metrics,
    /// The node's merge statistics, collected into `stats.merges` in DFS
    /// post-order afterwards so the two schedulers' reports coincide.
    pub(crate) merge_stats: Option<MergeStats>,
}

/// [`Scheduler::LevelSync`]: the level-synchronous recursion. Top-down,
/// each level's subproblems are partitioned in *one* batched kernel
/// invocation over vertex-disjoint instances; bottom-up, the merges run
/// level by level. Same rotation, metrics, and statistics as
/// [`solve_sequential`]: per-instance metrics are bit-identical to
/// one-at-a-time runs, and all charges compose order-independently.
fn solve_level_sync(
    g: &Graph,
    tree: &GlobalTree,
    cfg: &EmbedderConfig,
    stats: &mut RecursionStats,
    ctx: &mut ExecutionContext<'_>,
) -> Result<(PartState, Metrics), EmbedError> {
    let mut nodes = solve_level_sync_retained(g, tree, cfg, stats, ctx)?;
    let root_metrics = nodes[0].metrics;
    let part = nodes[0].part.take().expect("root solved");
    Ok((part, root_metrics))
}

/// [`solve_level_sync`] with the recursion arena kept alive: identical
/// execution, but instead of surrendering just the root part it returns
/// the full arena — every node's partition, solved part, metrics, and
/// merge statistics retained — for the incremental re-embedding path to
/// resume from.
pub(crate) fn solve_level_sync_retained(
    g: &Graph,
    tree: &GlobalTree,
    cfg: &EmbedderConfig,
    stats: &mut RecursionStats,
    ctx: &mut ExecutionContext<'_>,
) -> Result<Vec<RecNode>, EmbedError> {
    let mut nodes: Vec<RecNode> = vec![RecNode {
        root: tree.root,
        level: 0,
        children: Vec::new(),
        partition: None,
        part: None,
        metrics: Metrics::new(),
        merge_stats: None,
    }];

    // Top-down: partition every level in one batched kernel invocation.
    let mut frontier: Vec<usize> = vec![0];
    let mut level = 0usize;
    while !frontier.is_empty() {
        ensure_level(stats, level);
        let mut internal: Vec<usize> = Vec::new();
        for &ni in &frontier {
            let root = nodes[ni].root;
            if tree.subtree_size[root.index()] as usize == 1 {
                let (part, m) = solve_leaf(root, level, stats);
                nodes[ni].part = Some(part);
                nodes[ni].metrics = m;
            } else {
                internal.push(ni);
            }
        }
        let mut next_frontier: Vec<usize> = Vec::new();
        if !internal.is_empty() {
            ctx.enter(Phase::Partition);
            let roots: Vec<VertexId> = internal.iter().map(|&ni| nodes[ni].root).collect();
            let partitions = partition_level(ctx, tree, &roots)?;
            for (&ni, partition) in internal.iter().zip(partitions) {
                ctx.charge(&partition.metrics);
                let size = tree.subtree_size[nodes[ni].root.index()] as usize;
                note_partition(g, tree, size, level, &partition, cfg, stats)?;
                for sub in &partition.parts {
                    let ci = nodes.len();
                    nodes.push(RecNode {
                        root: sub.root,
                        level: level + 1,
                        children: Vec::new(),
                        partition: None,
                        part: None,
                        metrics: Metrics::new(),
                        merge_stats: None,
                    });
                    nodes[ni].children.push(ci);
                    next_frontier.push(ci);
                }
                nodes[ni].partition = Some(partition);
            }
        }
        frontier = next_frontier;
        level += 1;
    }

    // Bottom-up: merge every internal node once its children are solved.
    // Merges stay per-subproblem (their cost is charged analytically and
    // their symmetry breaking runs on per-merge virtual graphs).
    for ni in (0..nodes.len()).rev() {
        // Retained arena: clone what the merge consumes instead of
        // `take()`ing it, so the node keeps its partition and the children
        // keep their parts after the pass.
        let Some((p0, partition_metrics)) = nodes[ni]
            .partition
            .as_ref()
            .map(|p| (p.p0.clone(), p.metrics))
        else {
            continue; // leaf: already solved
        };
        let mut children_metrics = Metrics::new();
        let mut hanging = Vec::with_capacity(nodes[ni].children.len());
        for ci in nodes[ni].children.clone() {
            children_metrics.join_parallel(nodes[ci].metrics);
            hanging.push(nodes[ci].part.clone().expect("child solved before parent"));
        }
        ctx.enter(Phase::Merge);
        let merged = merge_parts_ctx(ctx, p0, hanging, cfg.check_invariants)?;
        ctx.charge(&merged.metrics);
        nodes[ni].merge_stats = Some(merged.stats);

        let mut total = partition_metrics;
        total.add(children_metrics);
        total.add(merged.metrics);
        let level = nodes[ni].level;
        stats.levels[level].rounds = stats.levels[level].rounds.max(total.rounds);
        nodes[ni].part = Some(merged.part);
        nodes[ni].metrics = total;
    }

    // Collect merge statistics in DFS post-order — the order the
    // sequential scheduler pushes them in.
    collect_merge_stats(&nodes, stats);

    Ok(nodes)
}

/// Pushes the arena's merge statistics into `stats.merges` in DFS
/// post-order — the order the sequential scheduler pushes them in. The
/// arena is read, not drained, so the pass can rerun after an incremental
/// re-merge.
pub(crate) fn collect_merge_stats(nodes: &[RecNode], stats: &mut RecursionStats) {
    let mut stack: Vec<(usize, bool)> = vec![(0, false)];
    while let Some((ni, visited)) = stack.pop() {
        if visited {
            if let Some(ms) = nodes[ni].merge_stats.clone() {
                stats.merges.push(ms);
            }
        } else {
            stack.push((ni, true));
            for &ci in nodes[ni].children.iter().rev() {
                stack.push((ci, false));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::protocols::ReliableConfig;
    use congest_sim::{FaultPlan, LinkFaults};
    use planar_graph::biconnected::BiconnectedDecomposition;
    use planar_lib::gen;

    fn run(g: &Graph) -> EmbeddingOutcome {
        embed_distributed(g, &EmbedderConfig::default()).unwrap()
    }

    #[test]
    fn embeds_grid() {
        let g = gen::grid(5, 5);
        let out = run(&g);
        assert!(out.rotation.is_planar_embedding());
        assert_eq!(out.rotation.to_graph(), g);
        assert!(out.stats.max_child_ratio() <= 2.0 / 3.0 + 1e-9);
        assert!(out.metrics.rounds > 0);
    }

    #[test]
    fn embeds_all_small_families() {
        for g in [
            gen::path(17),
            gen::cycle(16),
            gen::star(15),
            gen::random_tree(25, 3),
            gen::triangulated_grid(4, 4),
            gen::k4_subdivided(4),
            gen::theta(3, 5),
            gen::wheel(10),
            gen::fan(12),
            gen::random_outerplanar(18, 2),
            gen::random_maximal_planar(18, 5),
            gen::random_planar(24, 40, 9),
            gen::wheel_chain(3, 5),
        ] {
            let out = run(&g);
            assert!(out.rotation.is_planar_embedding());
            assert_eq!(out.rotation.to_graph(), g);
        }
    }

    /// Satellite: every kernel round is attributed to exactly one phase —
    /// the breakdown sums to the sequential round tally (the quantity
    /// degraded runs report as `rounds_used`).
    #[test]
    fn phase_rounds_sum_to_sequential_tally() {
        for g in [gen::grid(5, 5), gen::triangulated_grid(4, 4), gen::path(17)] {
            let out = run(&g);
            let pr = out.stats.phase_rounds;
            assert_eq!(
                pr.sum(),
                out.stats.sequential_rounds,
                "unattributed rounds: {pr:?} vs {}",
                out.stats.sequential_rounds
            );
            assert!(pr.setup > 0, "setup must cost rounds: {pr:?}");
            assert!(pr.partition > 0, "partition must cost rounds: {pr:?}");
            // The sequential tally bounds the parallel-composed count.
            assert!(out.stats.sequential_rounds >= out.metrics.rounds);
        }
    }

    /// Satellite (fidelity regression): the distributed recursion's merged
    /// part must cover every vertex, leave no edge half-embedded, and the
    /// graph it covers must carry the same block structure (biconnected
    /// components, cut vertices) as the centralized rotation the driver
    /// hands out — pinning the documented stand-in at the `planar_lib::
    /// embed` call against silent drift.
    #[test]
    fn merged_part_covers_graph_and_matches_centralized_blocks() {
        for g in [
            gen::grid(5, 5),
            gen::wheel_chain(3, 5),
            gen::random_outerplanar(18, 2),
        ] {
            let cfg = EmbedderConfig::default();
            let mut ctx = ExecutionContext::new(&g, &cfg);
            let (setup, _) = run_setup_ctx(&mut ctx).unwrap();
            let mut stats = RecursionStats::default();
            let (part, _) = solve_level_sync(&g, &setup.tree, &cfg, &mut stats, &mut ctx).unwrap();
            // Full coverage, no half-embedded edges left at the top.
            assert_eq!(part.len(), g.vertex_count());
            for v in g.vertices() {
                assert!(part.contains(v));
            }
            assert!(crate::parts::half_embedded_edges(&g, &part.members).is_empty());
            // Block-structure agreement with the centralized embedding.
            let rotation = planar_lib::embed(&g).unwrap();
            let rg = rotation.to_graph();
            assert_eq!(rg, g);
            let a = BiconnectedDecomposition::compute(&g);
            let b = BiconnectedDecomposition::compute(&rg);
            assert_eq!(a.block_count(), b.block_count());
            let cuts = |bc: &BiconnectedDecomposition| -> Vec<VertexId> {
                g.vertices().filter(|&v| bc.is_cut_vertex(v)).collect()
            };
            assert_eq!(cuts(&a), cuts(&b));
        }
    }

    /// Tentpole: with `certify` set the outcome carries accepted
    /// certificates, the verifier cost is attributed to the `cert` phase,
    /// and the phase-sum invariant still holds.
    #[test]
    fn certified_embedding_carries_accepted_report() {
        for g in [
            gen::grid(5, 5),
            gen::wheel(10),
            gen::random_planar(20, 35, 7),
        ] {
            let cfg = EmbedderConfig {
                certify: true,
                ..EmbedderConfig::default()
            };
            let out = embed_distributed(&g, &cfg).unwrap();
            let cert = out.certification.as_ref().expect("certify was requested");
            assert!(cert.accepted());
            assert_eq!(cert.certificates.len(), g.vertex_count());
            assert!(
                out.stats.phase_rounds.cert > 0,
                "cert phase must be charged"
            );
            assert!(out.stats.phase_rounds.cert <= 2, "verifier must be O(1)");
            assert_eq!(out.stats.phase_rounds.sum(), out.stats.sequential_rounds);
            // Off by default: no certification artifacts, no cert rounds.
            let plain = run(&g);
            assert!(plain.certification.is_none());
            assert_eq!(plain.stats.phase_rounds.cert, 0);
        }
    }

    /// Certification composes with faults + reliable delivery: the
    /// verifier phase rides the same lossy network and still accepts.
    #[test]
    fn certified_embedding_survives_lossy_links() {
        let g = gen::grid(4, 4);
        let cfg = EmbedderConfig {
            sim: SimConfig {
                faults: FaultPlan::uniform(23, 0.05, 0.02, 0.05, 2),
                ..SimConfig::default()
            },
            reliability: Some(ReliableConfig::default()),
            certify: true,
            ..EmbedderConfig::default()
        };
        match embed_distributed(&g, &cfg) {
            Ok(out) => {
                let cert = out.certification.expect("certify was requested");
                assert!(cert.accepted());
            }
            Err(EmbedError::Degraded { .. }) => {
                // Losing a phase to chaos is legitimate; accepting an
                // uncertified result would not be.
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn recursion_depth_is_logarithmic() {
        let g = gen::grid(8, 8);
        let out = run(&g);
        // Lemma 4.3: depth <= log_{3/2} 64 + O(1) ~ 10.3.
        assert!(out.stats.depth <= 13, "depth = {}", out.stats.depth);
    }

    #[test]
    fn rejects_nonplanar() {
        assert!(matches!(
            embed_distributed(&gen::complete(5), &EmbedderConfig::default()),
            Err(EmbedError::NonPlanar)
        ));
        // K3,3 passes the density bound; rejection must come from a merge.
        let k33 = Graph::from_edges(
            6,
            [
                (0, 3),
                (0, 4),
                (0, 5),
                (1, 3),
                (1, 4),
                (1, 5),
                (2, 3),
                (2, 4),
                (2, 5),
            ],
        )
        .unwrap();
        assert!(matches!(
            embed_distributed(&k33, &EmbedderConfig::default()),
            Err(EmbedError::NonPlanar)
        ));
    }

    #[test]
    fn rejects_disconnected_and_empty() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(matches!(
            embed_distributed(&g, &EmbedderConfig::default()),
            Err(EmbedError::Disconnected)
        ));
        assert!(matches!(
            embed_distributed(&Graph::new(0), &EmbedderConfig::default()),
            Err(EmbedError::EmptyGraph)
        ));
    }

    #[test]
    fn single_vertex_network() {
        let out = run(&Graph::new(1));
        assert_eq!(out.rotation.vertex_count(), 1);
        assert_eq!(out.metrics.rounds, 0);
    }

    #[test]
    fn two_vertex_network() {
        let g = gen::path(2);
        let out = run(&g);
        assert!(out.rotation.is_planar_embedding());
    }

    /// Property (c) of the fault test plan: drop rate 1.0 on a cut edge
    /// must end in `Degraded`, not a hang — the watchdog and the reliable
    /// wrapper's give-up bound every phase.
    #[test]
    fn dead_cut_edge_degrades_instead_of_hanging() {
        let g = gen::path(6); // every edge is a cut edge
        let mut plan = FaultPlan {
            seed: 7,
            ..FaultPlan::default()
        };
        for (a, b) in [(2u32, 3u32), (3, 2)] {
            plan.link_overrides.push((
                (VertexId(a), VertexId(b)),
                LinkFaults {
                    drop: 1.0,
                    duplicate: 0.0,
                    delay: 0.0,
                    max_delay: 0,
                },
            ));
        }
        for reliability in [None, Some(ReliableConfig::default())] {
            let cfg = EmbedderConfig {
                sim: SimConfig {
                    faults: plan.clone(),
                    ..SimConfig::default()
                },
                reliability,
                ..EmbedderConfig::default()
            };
            match embed_distributed(&g, &cfg) {
                Err(EmbedError::Degraded {
                    surviving_nodes,
                    cause,
                    ..
                }) => {
                    assert_eq!(surviving_nodes, 6, "no crashes in this plan");
                    assert!(
                        matches!(
                            cause,
                            DegradedCause::PhaseIncomplete { .. } | DegradedCause::Sim(_)
                        ),
                        "unexpected cause: {cause:?}"
                    );
                }
                other => panic!("expected Degraded, got {other:?}"),
            }
        }
    }

    /// Crash-stop nodes degrade the run and are reported in
    /// `surviving_nodes`.
    #[test]
    fn crashed_node_degrades_with_survivor_count() {
        let g = gen::grid(4, 4);
        let mut plan = FaultPlan {
            seed: 11,
            ..FaultPlan::default()
        };
        plan.crashes.push((VertexId(5), 0));
        let cfg = EmbedderConfig {
            sim: SimConfig {
                faults: plan,
                ..SimConfig::default()
            },
            ..EmbedderConfig::default()
        };
        match embed_distributed(&g, &cfg) {
            Err(EmbedError::Degraded {
                surviving_nodes, ..
            }) => assert_eq!(surviving_nodes, 15),
            other => panic!("expected Degraded, got {other:?}"),
        }
    }

    /// Satellite regression: a watchdog firing mid-phase must still charge
    /// the rounds that phase burned. Pre-fix, the aborted phase returned no
    /// `Metrics`, so a run killed in its *first* phase reported
    /// `rounds_used: 0` after consuming the full watchdog budget.
    #[test]
    fn degraded_run_charges_watchdogged_phase_rounds() {
        let g = gen::grid(4, 4);
        let cfg = EmbedderConfig {
            sim: SimConfig {
                faults: FaultPlan::uniform(1, 0.01, 0.0, 0.01, 2),
                watchdog: Some(4), // far below what setup needs on a 4x4 grid
                ..SimConfig::default()
            },
            reliability: Some(ReliableConfig::default()),
            ..EmbedderConfig::default()
        };
        match embed_distributed(&g, &cfg) {
            Err(EmbedError::Degraded {
                rounds_used, cause, ..
            }) => {
                assert!(
                    matches!(
                        cause,
                        DegradedCause::Sim(congest_sim::SimError::WatchdogTimeout { limit: 4 })
                    ),
                    "unexpected cause: {cause:?}"
                );
                assert_eq!(
                    rounds_used, 4,
                    "the watchdogged phase ran 4 rounds before aborting; \
                     they must appear in rounds_used"
                );
            }
            other => panic!("expected a watchdogged Degraded run, got {other:?}"),
        }
    }

    /// A modestly lossy network with reliable delivery still embeds — and
    /// identically across repeat runs (replayability end to end).
    #[test]
    fn reliable_delivery_survives_lossy_links() {
        let g = gen::grid(4, 4);
        let cfg = EmbedderConfig {
            sim: SimConfig {
                faults: FaultPlan::uniform(23, 0.05, 0.02, 0.05, 2),
                ..SimConfig::default()
            },
            reliability: Some(ReliableConfig::default()),
            ..EmbedderConfig::default()
        };
        let a = embed_distributed(&g, &cfg);
        let b = embed_distributed(&g, &cfg);
        match (&a, &b) {
            (Ok(x), Ok(y)) => {
                assert!(x.rotation.is_planar_embedding());
                assert_eq!(x.rotation, y.rotation);
                assert_eq!(x.metrics, y.metrics);
                assert!(x.metrics.dropped > 0 || x.metrics.retransmissions > 0);
            }
            (Err(EmbedError::Degraded { .. }), Err(EmbedError::Degraded { .. })) => {
                // Degrading is acceptable; diverging is not.
            }
            other => panic!("runs diverged or failed untyped: {other:?}"),
        }
    }

    /// `FaultPlan::default()` leaves the embedder's outcome byte-identical
    /// (acceptance criterion: the fault subsystem costs nothing unused).
    #[test]
    fn default_fault_plan_changes_nothing() {
        let g = gen::triangulated_grid(4, 4);
        let plain = run(&g);
        let explicit = embed_distributed(
            &g,
            &EmbedderConfig {
                sim: SimConfig {
                    faults: FaultPlan::default(),
                    ..SimConfig::default()
                },
                ..EmbedderConfig::default()
            },
        )
        .unwrap();
        assert_eq!(plain.rotation, explicit.rotation);
        assert_eq!(plain.metrics, explicit.metrics);
        assert_eq!(plain.metrics.dropped, 0);
        assert_eq!(plain.metrics.retransmissions, 0);
    }

    #[test]
    fn rounds_scale_near_d_log_n_on_grids() {
        // Sanity check of the Theorem 1.1 shape (full sweep in the bench
        // harness): rounds / (D log n) stays within a modest constant.
        let g = gen::grid(6, 6);
        let out = run(&g);
        let d = 10.0; // grid diameter
        let logn = (36f64).log2();
        let ratio = out.metrics.rounds as f64 / (d * logn);
        assert!(
            ratio < 40.0,
            "rounds = {}, ratio = {ratio}",
            out.metrics.rounds
        );
    }
}
