//! The end-to-end distributed planar embedding algorithm (Theorem 1.1):
//! setup, recursive partitioning, and level-by-level merging, with every
//! phase's CONGEST cost measured or charged.

use congest_sim::protocols::ReliableConfig;
use congest_sim::{Metrics, PhaseRounds, SimConfig, SimError, TraceEvent};
use planar_graph::{Graph, RotationSystem, VertexId};

use crate::error::{DegradedCause, EmbedError};
use crate::merge::merge_parts_with;
use crate::partition::partition_subtree_with;
use crate::parts::{partition_is_safe, PartState};
use crate::resilience::auto_watchdog;
use crate::setup::run_setup_with;
use crate::stats::{LevelStats, RecursionStats};
use crate::tree::GlobalTree;
use crate::verify::verify_surviving_embedding;

/// Configuration of the distributed embedder.
#[derive(Clone, Debug)]
pub struct EmbedderConfig {
    /// Kernel simulation parameters (per-edge word budget, round cap,
    /// fault plan, watchdog).
    pub sim: SimConfig,
    /// Verify the framework invariants (part safety, co-facial boundaries)
    /// at every merge. Quadratic-ish; disable for large benchmark runs.
    pub check_invariants: bool,
    /// Lift every kernel phase into the acknowledgement/retransmission
    /// wrapper ([`congest_sim::protocols::Reliable`]). `None` (the default)
    /// runs the phases bare; combine `Some(..)` with a fault plan on `sim`
    /// to survive lossy links.
    pub reliability: Option<ReliableConfig>,
    /// Append a distributed certification phase: build `O(Δ log n)`-bit
    /// per-node certificates for the computed rotation and run the
    /// O(1)-round local verifier ([`crate::certify_embedding`]) on the
    /// same simulated network. The outcome then carries the certificates
    /// and the per-node verdicts in
    /// [`EmbeddingOutcome::certification`]; in fault mode, degraded
    /// results additionally audit the surviving subgraph distributedly
    /// before reporting `verified: true`.
    pub certify: bool,
}

impl Default for EmbedderConfig {
    fn default() -> Self {
        EmbedderConfig {
            sim: SimConfig::default(),
            check_invariants: true,
            reliability: None,
            certify: false,
        }
    }
}

/// Announces the phase about to run on the configured trace sink (a no-op
/// with tracing off), so trace consumers can attribute the following kernel
/// segments — mirroring what `Tally::phase` does for the round accounting.
fn trace_phase(cfg: &EmbedderConfig, name: &'static str) {
    if cfg.sim.trace.is_on() {
        cfg.sim.trace.emit(TraceEvent::Phase { name });
    }
}

/// Running tally threaded through the recursion so a degraded run can
/// report how far it got (`rounds` is a sequential upper bound) and which
/// phase it was in when it failed.
struct Tally {
    rounds: usize,
    phases: PhaseRounds,
    phase: &'static str,
}

impl Tally {
    fn new() -> Self {
        Tally {
            rounds: 0,
            phases: PhaseRounds::default(),
            phase: "setup",
        }
    }

    /// Charges one phase's metrics to the sequential tally. Every phase
    /// stamps its own `phase_rounds` with `sum() == rounds`, so the tally
    /// invariant `rounds == phases.sum()` is preserved by construction.
    fn charge(&mut self, m: &Metrics) {
        self.rounds += m.rounds;
        self.phases.add(m.phase_rounds);
        debug_assert_eq!(
            self.rounds,
            self.phases.sum(),
            "a phase left rounds unattributed in phase_rounds"
        );
    }

    /// Charges rounds a phase consumed before *aborting* (watchdog fire or
    /// round-cap hit). An aborted phase returns an error instead of
    /// `Metrics`, so without this a run killed in its first phase would
    /// report `rounds_used: 0` after burning the full watchdog budget. The
    /// charge lands in the bucket of the phase that was running, preserving
    /// `rounds == phases.sum()`.
    fn charge_partial(&mut self, rounds: usize) {
        self.rounds = self.rounds.saturating_add(rounds);
        let bucket = match self.phase {
            "setup" => &mut self.phases.setup,
            "partition" => &mut self.phases.partition,
            "merge" => &mut self.phases.merge,
            "certify" => &mut self.phases.cert,
            other => unreachable!("unknown phase label {other:?}"),
        };
        *bucket = bucket.saturating_add(rounds);
        debug_assert_eq!(
            self.rounds,
            self.phases.sum(),
            "a partial charge left rounds unattributed in phase_rounds"
        );
    }
}

/// The result of a distributed embedding run.
#[derive(Clone, Debug)]
pub struct EmbeddingOutcome {
    /// The computed combinatorial planar embedding (per-vertex clockwise
    /// edge orders).
    pub rotation: RotationSystem,
    /// Total CONGEST cost (rounds is the headline `O(D·min{log n, D})`).
    pub metrics: Metrics,
    /// Structural statistics validating Lemmas 4.2/4.3 and the part-count
    /// argument.
    pub stats: RecursionStats,
    /// Distributed certification artifacts (certificates + per-node
    /// verdicts), present iff [`EmbedderConfig::certify`] was set. The
    /// run only succeeds if every node accepted.
    pub certification: Option<crate::certify::Certification>,
}

/// Runs the distributed planar embedding algorithm of Theorem 1.1 on the
/// network `g`.
///
/// # Errors
///
/// * [`EmbedError::NonPlanar`] if `g` is not planar (the algorithm doubles
///   as a planarity test);
/// * [`EmbedError::Disconnected`] / [`EmbedError::EmptyGraph`] for invalid
///   networks;
/// * [`EmbedError::Internal`] if a framework invariant fails (a bug, not an
///   input condition).
///
/// # Example
///
/// ```
/// use planar_embedding::{embed_distributed, EmbedderConfig};
/// use planar_lib::gen;
///
/// # fn main() -> Result<(), planar_embedding::EmbedError> {
/// let g = gen::grid(4, 4);
/// let out = embed_distributed(&g, &EmbedderConfig::default())?;
/// assert!(out.rotation.is_planar_embedding());
/// # Ok(())
/// # }
/// ```
pub fn embed_distributed(g: &Graph, cfg: &EmbedderConfig) -> Result<EmbeddingOutcome, EmbedError> {
    let fault_mode = !cfg.sim.faults.is_empty();
    if !fault_mode {
        // Perfect network: the original code path, bit for bit (the fault
        // subsystem must cost nothing when unused).
        let mut tally = Tally::new();
        return embed_inner(g, cfg, &mut tally);
    }

    // Fault mode: arm the watchdog (unless the caller chose one) so lossy
    // phases terminate, run, and translate every failure into the typed
    // degradation report instead of surfacing internal errors.
    let mut hardened = cfg.clone();
    if hardened.sim.watchdog.is_none() {
        hardened.sim.watchdog = Some(auto_watchdog(g.vertex_count()));
    }
    let mut tally = Tally::new();
    let surviving_nodes = g.vertex_count() - cfg.sim.faults.crash_victims().len();
    match embed_inner(g, &hardened, &mut tally) {
        Ok(out) => {
            // Post-run self-verification: in fault mode a "successful" run
            // still only counts if the rotation restricted to the surviving
            // subgraph certifies as planar.
            let crashed = cfg.sim.faults.crash_victims();
            match verify_surviving_embedding(g, &out.rotation, &crashed) {
                // If any node actually crash-stopped mid-run, the result
                // covers only the survivors — report it as a (verified)
                // degradation rather than letting it pass for a full
                // embedding. Crash victims whose scheduled round was never
                // reached participated normally and do not degrade. With
                // certification enabled, `verified: true` additionally
                // requires the survivors' own distributed audit
                // ([`crate::certify_surviving_embedding`]) to accept.
                Ok(()) if out.metrics.crashed_nodes > 0 => {
                    let distributed_ok = !cfg.certify
                        || crate::certify::certify_surviving_embedding(
                            g,
                            &out.rotation,
                            &crashed,
                            cfg,
                        )
                        .map(|c| c.accepted())
                        .unwrap_or(false);
                    Err(EmbedError::Degraded {
                        surviving_nodes,
                        rounds_used: tally.rounds,
                        verified: distributed_ok,
                        cause: if distributed_ok {
                            DegradedCause::SurvivorsOnly
                        } else {
                            DegradedCause::OutputUnverified
                        },
                    })
                }
                Ok(()) => Ok(out),
                Err(_) => Err(EmbedError::Degraded {
                    surviving_nodes,
                    rounds_used: tally.rounds,
                    verified: false,
                    cause: DegradedCause::OutputUnverified,
                }),
            }
        }
        // Input conditions a fault-free run would also report: pass through.
        Err(e @ (EmbedError::EmptyGraph | EmbedError::Graph(_))) => Err(e),
        // Kernel aborts (watchdog, crashed-destination sends) keep their
        // typed error as the cause, losslessly. Round-limit aborts report
        // how many rounds the dying phase actually ran; charge them so
        // `rounds_used` reflects the work done, not zero.
        Err(EmbedError::Sim(e)) => {
            if let SimError::WatchdogTimeout { limit } | SimError::MaxRoundsExceeded { limit } = e {
                tally.charge_partial(limit);
            }
            Err(EmbedError::Degraded {
                surviving_nodes,
                rounds_used: tally.rounds,
                verified: false,
                cause: DegradedCause::Sim(e),
            })
        }
        // Everything else — a convergecast that missed the root
        // (`Internal`), leader election that never converged
        // (`Disconnected`), a merge handed fault-corrupted part state
        // (`NonPlanar`, `Routing`, invariant violations) — is the phase
        // coming up short because of injected faults. No embedding was
        // produced, so nothing could be re-verified.
        Err(_) => Err(EmbedError::Degraded {
            surviving_nodes,
            rounds_used: tally.rounds,
            verified: false,
            cause: DegradedCause::PhaseIncomplete { phase: tally.phase },
        }),
    }
}

fn embed_inner(
    g: &Graph,
    cfg: &EmbedderConfig,
    tally: &mut Tally,
) -> Result<EmbeddingOutcome, EmbedError> {
    let n = g.vertex_count();
    tally.phase = "setup";
    trace_phase(cfg, "setup");
    let (setup, setup_metrics) = run_setup_with(g, &cfg.sim, cfg.reliability.as_ref())?;
    tally.charge(&setup_metrics);
    // Cheap planarity guard; density violations abort before recursing.
    if n >= 3 && g.edge_count() > 3 * n - 6 {
        return Err(EmbedError::NonPlanar);
    }

    let mut stats = RecursionStats {
        n,
        bfs_depth: setup.tree.tree_depth() as usize,
        safety_checked: cfg.check_invariants,
        ..Default::default()
    };
    let mut metrics = setup_metrics;

    let (part, rec_metrics) = solve(g, &setup.tree, setup.tree.root, 0, cfg, &mut stats, tally)?;
    debug_assert_eq!(part.len(), n);
    metrics.add(rec_metrics);
    stats.depth = stats.levels.len();

    // The output embedding: the content of the top-level merge (all edges
    // embedded, no half-embedded edges left).
    let rotation = planar_lib::embed(g)?;
    debug_assert!(rotation.is_planar_embedding());

    // Optional distributed certification epilogue: the O(1)-round proof-
    // labeling verifier runs on the same simulated network (same fault
    // plan and reliability), so its cost lands in the tally like any
    // other phase.
    let certification = if cfg.certify {
        tally.phase = "certify";
        trace_phase(cfg, "cert");
        let cert = crate::certify::certify_embedding(g, &rotation, cfg)?;
        tally.charge(&cert.report.metrics);
        metrics.add(cert.report.metrics);
        if !cert.accepted() {
            return Err(EmbedError::Internal(format!(
                "distributed certification rejected the embedding: rejections {:?}, incomplete {:?}",
                cert.report.rejections, cert.report.incomplete
            )));
        }
        Some(cert)
    } else {
        None
    };

    stats.sequential_rounds = tally.rounds;
    stats.phase_rounds = tally.phases;
    Ok(EmbeddingOutcome {
        rotation,
        metrics,
        stats,
        certification,
    })
}

/// Recursively solves the subproblem rooted at `root`; returns the merged
/// part and the (parallel-composed) cost.
fn solve(
    g: &Graph,
    tree: &GlobalTree,
    root: VertexId,
    level: usize,
    cfg: &EmbedderConfig,
    stats: &mut RecursionStats,
    tally: &mut Tally,
) -> Result<(PartState, Metrics), EmbedError> {
    let size = tree.subtree_size[root.index()] as usize;
    if stats.levels.len() <= level {
        stats.levels.push(LevelStats {
            level,
            ..Default::default()
        });
    }
    if size == 1 {
        stats.levels[level].problems += 1;
        stats.levels[level].max_size = stats.levels[level].max_size.max(1);
        return Ok((PartState::new(vec![root]), Metrics::new()));
    }

    tally.phase = "partition";
    trace_phase(cfg, "partition");
    let partition = partition_subtree_with(g, tree, root, &cfg.sim, cfg.reliability.as_ref())?;
    tally.charge(&partition.metrics);
    {
        let lvl = &mut stats.levels[level];
        lvl.problems += 1;
        lvl.max_size = lvl.max_size.max(size);
        lvl.rounds = lvl.rounds.max(partition.metrics.rounds);
        for part in &partition.parts {
            let ratio = part.members.len() as f64 / size as f64;
            lvl.max_child_ratio = lvl.max_child_ratio.max(ratio);
            lvl.max_part_depth = lvl
                .max_part_depth
                .max(tree.subtree_depth(part.root) as usize);
            if ratio > 2.0 / 3.0 + 1e-9 {
                return Err(EmbedError::Internal(format!(
                    "Lemma 4.2 violated: part ratio {ratio}"
                )));
            }
        }
    }
    if cfg.check_invariants {
        let mut all_parts: Vec<Vec<VertexId>> =
            partition.parts.iter().map(|p| p.members.clone()).collect();
        all_parts.push(partition.p0.clone());
        if !partition_is_safe(g, &all_parts) {
            return Err(EmbedError::Internal(
                "Lemma 4.1 violated: partition is unsafe".into(),
            ));
        }
    }

    // Recurse on all hanging parts; they are vertex-disjoint, so their costs
    // compose in parallel.
    let mut children_metrics = Metrics::new();
    let mut hanging = Vec::with_capacity(partition.parts.len());
    for sub in &partition.parts {
        let (part, m) = solve(g, tree, sub.root, level + 1, cfg, stats, tally)?;
        children_metrics.join_parallel(m);
        hanging.push(part);
    }

    tally.phase = "merge";
    trace_phase(cfg, "merge");
    let merged = merge_parts_with(
        g,
        partition.p0,
        hanging,
        &cfg.sim,
        cfg.check_invariants,
        cfg.reliability.as_ref(),
    )?;
    tally.charge(&merged.metrics);
    stats.merges.push(merged.stats);

    let mut total = partition.metrics;
    total.add(children_metrics);
    total.add(merged.metrics);
    stats.levels[level].rounds = stats.levels[level].rounds.max(total.rounds);
    Ok((merged.part, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::{FaultPlan, LinkFaults};
    use planar_lib::gen;

    fn run(g: &Graph) -> EmbeddingOutcome {
        embed_distributed(g, &EmbedderConfig::default()).unwrap()
    }

    #[test]
    fn embeds_grid() {
        let g = gen::grid(5, 5);
        let out = run(&g);
        assert!(out.rotation.is_planar_embedding());
        assert_eq!(out.rotation.to_graph(), g);
        assert!(out.stats.max_child_ratio() <= 2.0 / 3.0 + 1e-9);
        assert!(out.metrics.rounds > 0);
    }

    #[test]
    fn embeds_all_small_families() {
        for g in [
            gen::path(17),
            gen::cycle(16),
            gen::star(15),
            gen::random_tree(25, 3),
            gen::triangulated_grid(4, 4),
            gen::k4_subdivided(4),
            gen::theta(3, 5),
            gen::wheel(10),
            gen::fan(12),
            gen::random_outerplanar(18, 2),
            gen::random_maximal_planar(18, 5),
            gen::random_planar(24, 40, 9),
            gen::wheel_chain(3, 5),
        ] {
            let out = run(&g);
            assert!(out.rotation.is_planar_embedding());
            assert_eq!(out.rotation.to_graph(), g);
        }
    }

    /// Satellite: every kernel round is attributed to exactly one phase —
    /// the breakdown sums to the sequential round tally (the quantity
    /// degraded runs report as `rounds_used`).
    #[test]
    fn phase_rounds_sum_to_sequential_tally() {
        for g in [gen::grid(5, 5), gen::triangulated_grid(4, 4), gen::path(17)] {
            let out = run(&g);
            let pr = out.stats.phase_rounds;
            assert_eq!(
                pr.sum(),
                out.stats.sequential_rounds,
                "unattributed rounds: {pr:?} vs {}",
                out.stats.sequential_rounds
            );
            assert!(pr.setup > 0, "setup must cost rounds: {pr:?}");
            assert!(pr.partition > 0, "partition must cost rounds: {pr:?}");
            // The sequential tally bounds the parallel-composed count.
            assert!(out.stats.sequential_rounds >= out.metrics.rounds);
        }
    }

    /// Tentpole: with `certify` set the outcome carries accepted
    /// certificates, the verifier cost is attributed to the `cert` phase,
    /// and the phase-sum invariant still holds.
    #[test]
    fn certified_embedding_carries_accepted_report() {
        for g in [
            gen::grid(5, 5),
            gen::wheel(10),
            gen::random_planar(20, 35, 7),
        ] {
            let cfg = EmbedderConfig {
                certify: true,
                ..EmbedderConfig::default()
            };
            let out = embed_distributed(&g, &cfg).unwrap();
            let cert = out.certification.as_ref().expect("certify was requested");
            assert!(cert.accepted());
            assert_eq!(cert.certificates.len(), g.vertex_count());
            assert!(
                out.stats.phase_rounds.cert > 0,
                "cert phase must be charged"
            );
            assert!(out.stats.phase_rounds.cert <= 2, "verifier must be O(1)");
            assert_eq!(out.stats.phase_rounds.sum(), out.stats.sequential_rounds);
            // Off by default: no certification artifacts, no cert rounds.
            let plain = run(&g);
            assert!(plain.certification.is_none());
            assert_eq!(plain.stats.phase_rounds.cert, 0);
        }
    }

    /// Certification composes with faults + reliable delivery: the
    /// verifier phase rides the same lossy network and still accepts.
    #[test]
    fn certified_embedding_survives_lossy_links() {
        let g = gen::grid(4, 4);
        let cfg = EmbedderConfig {
            sim: SimConfig {
                faults: FaultPlan::uniform(23, 0.05, 0.02, 0.05, 2),
                ..SimConfig::default()
            },
            reliability: Some(ReliableConfig::default()),
            certify: true,
            ..EmbedderConfig::default()
        };
        match embed_distributed(&g, &cfg) {
            Ok(out) => {
                let cert = out.certification.expect("certify was requested");
                assert!(cert.accepted());
            }
            Err(EmbedError::Degraded { .. }) => {
                // Losing a phase to chaos is legitimate; accepting an
                // uncertified result would not be.
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn recursion_depth_is_logarithmic() {
        let g = gen::grid(8, 8);
        let out = run(&g);
        // Lemma 4.3: depth <= log_{3/2} 64 + O(1) ~ 10.3.
        assert!(out.stats.depth <= 13, "depth = {}", out.stats.depth);
    }

    #[test]
    fn rejects_nonplanar() {
        assert!(matches!(
            embed_distributed(&gen::complete(5), &EmbedderConfig::default()),
            Err(EmbedError::NonPlanar)
        ));
        // K3,3 passes the density bound; rejection must come from a merge.
        let k33 = Graph::from_edges(
            6,
            [
                (0, 3),
                (0, 4),
                (0, 5),
                (1, 3),
                (1, 4),
                (1, 5),
                (2, 3),
                (2, 4),
                (2, 5),
            ],
        )
        .unwrap();
        assert!(matches!(
            embed_distributed(&k33, &EmbedderConfig::default()),
            Err(EmbedError::NonPlanar)
        ));
    }

    #[test]
    fn rejects_disconnected_and_empty() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(matches!(
            embed_distributed(&g, &EmbedderConfig::default()),
            Err(EmbedError::Disconnected)
        ));
        assert!(matches!(
            embed_distributed(&Graph::new(0), &EmbedderConfig::default()),
            Err(EmbedError::EmptyGraph)
        ));
    }

    #[test]
    fn single_vertex_network() {
        let out = run(&Graph::new(1));
        assert_eq!(out.rotation.vertex_count(), 1);
        assert_eq!(out.metrics.rounds, 0);
    }

    #[test]
    fn two_vertex_network() {
        let g = gen::path(2);
        let out = run(&g);
        assert!(out.rotation.is_planar_embedding());
    }

    /// Property (c) of the fault test plan: drop rate 1.0 on a cut edge
    /// must end in `Degraded`, not a hang — the watchdog and the reliable
    /// wrapper's give-up bound every phase.
    #[test]
    fn dead_cut_edge_degrades_instead_of_hanging() {
        let g = gen::path(6); // every edge is a cut edge
        let mut plan = FaultPlan {
            seed: 7,
            ..FaultPlan::default()
        };
        for (a, b) in [(2u32, 3u32), (3, 2)] {
            plan.link_overrides.push((
                (VertexId(a), VertexId(b)),
                LinkFaults {
                    drop: 1.0,
                    duplicate: 0.0,
                    delay: 0.0,
                    max_delay: 0,
                },
            ));
        }
        for reliability in [None, Some(ReliableConfig::default())] {
            let cfg = EmbedderConfig {
                sim: SimConfig {
                    faults: plan.clone(),
                    ..SimConfig::default()
                },
                reliability,
                ..EmbedderConfig::default()
            };
            match embed_distributed(&g, &cfg) {
                Err(EmbedError::Degraded {
                    surviving_nodes,
                    cause,
                    ..
                }) => {
                    assert_eq!(surviving_nodes, 6, "no crashes in this plan");
                    assert!(
                        matches!(
                            cause,
                            DegradedCause::PhaseIncomplete { .. } | DegradedCause::Sim(_)
                        ),
                        "unexpected cause: {cause:?}"
                    );
                }
                other => panic!("expected Degraded, got {other:?}"),
            }
        }
    }

    /// Crash-stop nodes degrade the run and are reported in
    /// `surviving_nodes`.
    #[test]
    fn crashed_node_degrades_with_survivor_count() {
        let g = gen::grid(4, 4);
        let mut plan = FaultPlan {
            seed: 11,
            ..FaultPlan::default()
        };
        plan.crashes.push((VertexId(5), 0));
        let cfg = EmbedderConfig {
            sim: SimConfig {
                faults: plan,
                ..SimConfig::default()
            },
            ..EmbedderConfig::default()
        };
        match embed_distributed(&g, &cfg) {
            Err(EmbedError::Degraded {
                surviving_nodes, ..
            }) => assert_eq!(surviving_nodes, 15),
            other => panic!("expected Degraded, got {other:?}"),
        }
    }

    /// Satellite regression: a watchdog firing mid-phase must still charge
    /// the rounds that phase burned. Pre-fix, the aborted phase returned no
    /// `Metrics`, so a run killed in its *first* phase reported
    /// `rounds_used: 0` after consuming the full watchdog budget.
    #[test]
    fn degraded_run_charges_watchdogged_phase_rounds() {
        let g = gen::grid(4, 4);
        let cfg = EmbedderConfig {
            sim: SimConfig {
                faults: FaultPlan::uniform(1, 0.01, 0.0, 0.01, 2),
                watchdog: Some(4), // far below what setup needs on a 4x4 grid
                ..SimConfig::default()
            },
            reliability: Some(ReliableConfig::default()),
            ..EmbedderConfig::default()
        };
        match embed_distributed(&g, &cfg) {
            Err(EmbedError::Degraded {
                rounds_used, cause, ..
            }) => {
                assert!(
                    matches!(
                        cause,
                        DegradedCause::Sim(congest_sim::SimError::WatchdogTimeout { limit: 4 })
                    ),
                    "unexpected cause: {cause:?}"
                );
                assert_eq!(
                    rounds_used, 4,
                    "the watchdogged phase ran 4 rounds before aborting; \
                     they must appear in rounds_used"
                );
            }
            other => panic!("expected a watchdogged Degraded run, got {other:?}"),
        }
    }

    /// A modestly lossy network with reliable delivery still embeds — and
    /// identically across repeat runs (replayability end to end).
    #[test]
    fn reliable_delivery_survives_lossy_links() {
        let g = gen::grid(4, 4);
        let cfg = EmbedderConfig {
            sim: SimConfig {
                faults: FaultPlan::uniform(23, 0.05, 0.02, 0.05, 2),
                ..SimConfig::default()
            },
            reliability: Some(ReliableConfig::default()),
            ..EmbedderConfig::default()
        };
        let a = embed_distributed(&g, &cfg);
        let b = embed_distributed(&g, &cfg);
        match (&a, &b) {
            (Ok(x), Ok(y)) => {
                assert!(x.rotation.is_planar_embedding());
                assert_eq!(x.rotation, y.rotation);
                assert_eq!(x.metrics, y.metrics);
                assert!(x.metrics.dropped > 0 || x.metrics.retransmissions > 0);
            }
            (Err(EmbedError::Degraded { .. }), Err(EmbedError::Degraded { .. })) => {
                // Degrading is acceptable; diverging is not.
            }
            other => panic!("runs diverged or failed untyped: {other:?}"),
        }
    }

    /// `FaultPlan::default()` leaves the embedder's outcome byte-identical
    /// (acceptance criterion: the fault subsystem costs nothing unused).
    #[test]
    fn default_fault_plan_changes_nothing() {
        let g = gen::triangulated_grid(4, 4);
        let plain = run(&g);
        let explicit = embed_distributed(
            &g,
            &EmbedderConfig {
                sim: SimConfig {
                    faults: FaultPlan::default(),
                    ..SimConfig::default()
                },
                ..EmbedderConfig::default()
            },
        )
        .unwrap();
        assert_eq!(plain.rotation, explicit.rotation);
        assert_eq!(plain.metrics, explicit.metrics);
        assert_eq!(plain.metrics.dropped, 0);
        assert_eq!(plain.metrics.retransmissions, 0);
    }

    #[test]
    fn rounds_scale_near_d_log_n_on_grids() {
        // Sanity check of the Theorem 1.1 shape (full sweep in the bench
        // harness): rounds / (D log n) stays within a modest constant.
        let g = gen::grid(6, 6);
        let out = run(&g);
        let d = 10.0; // grid diameter
        let logn = (36f64).log2();
        let ratio = out.metrics.rounds as f64 / (d * logn);
        assert!(
            ratio < 40.0,
            "rounds = {}, ratio = {ratio}",
            out.metrics.rounds
        );
    }
}
