//! Phase A — the `O(D)` setup the paper's preliminaries assume: leader
//! election (max id), global BFS tree, subtree sizes, `n` and a diameter
//! estimate, all computed by genuine message-level kernel protocols.

use congest_sim::protocols::{AggOp, ChildNotify, Convergecast, Downcast, LeaderBfs};
use congest_sim::{Metrics, SimConfig};
use planar_graph::{Graph, VertexId};

use crate::error::EmbedError;
use crate::exec::ExecutionContext;
use crate::tree::GlobalTree;

/// Output of the setup phase.
#[derive(Clone, Debug)]
pub struct Setup {
    /// The global BFS tree rooted at the elected leader.
    pub tree: GlobalTree,
    /// Number of nodes, as learned by every node via broadcast.
    pub n: u64,
    /// The 2-approximate diameter estimate `2·ecc(s*)` every node learned.
    pub diameter_estimate: u64,
}

/// Runs the setup phase and returns the tree plus its exact CONGEST cost.
///
/// # Errors
///
/// Returns [`EmbedError::Disconnected`] / [`EmbedError::EmptyGraph`] for
/// invalid networks and propagates kernel errors.
pub fn run_setup(g: &Graph, cfg: &SimConfig) -> Result<(Setup, Metrics), EmbedError> {
    run_setup_ctx(&mut ExecutionContext::with_sim(g, cfg))
}

/// [`run_setup`] against a full [`ExecutionContext`]: each of the six
/// kernel protocols runs on the context's kernel with its reliability
/// policy, so a lossy network ([`congest_sim::FaultPlan`]) is survived by
/// acknowledgement/retransmission instead of silently corrupting the tree.
///
/// # Errors
///
/// As [`run_setup`].
pub fn run_setup_ctx(ctx: &mut ExecutionContext<'_>) -> Result<(Setup, Metrics), EmbedError> {
    let g = ctx.graph();
    let n = g.vertex_count();
    if n == 0 {
        return Err(EmbedError::EmptyGraph);
    }
    let mut metrics = Metrics::new();

    // 1. Leader election + BFS by flooding.
    let programs: Vec<LeaderBfs> = g
        .vertices()
        .map(|v| LeaderBfs::new(v, g.neighbors(v).to_vec()))
        .collect();
    let out = ctx.run_phase(programs)?;
    metrics.add(out.metrics);
    let leaders: Vec<VertexId> = out.programs.iter().map(|p| p.leader()).collect();
    let expected_leader = VertexId::from_index(n - 1);
    if leaders.iter().any(|&l| l != expected_leader) {
        // Some node never heard from the max-id node.
        return Err(EmbedError::Disconnected);
    }
    let parent: Vec<Option<VertexId>> = out.programs.iter().map(|p| p.parent()).collect();
    let depth: Vec<u32> = out.programs.iter().map(|p| p.dist()).collect();
    let root = expected_leader;

    // 2. Child discovery (one round).
    let programs: Vec<ChildNotify> = parent.iter().map(|&p| ChildNotify::new(p)).collect();
    let out = ctx.run_phase(programs)?;
    metrics.add(out.metrics);
    let children: Vec<Vec<VertexId>> = out.programs.iter().map(|p| p.children().to_vec()).collect();

    // 3. Subtree sizes by convergecast (each node contributes 1).
    let programs: Vec<Convergecast> = g
        .vertices()
        .map(|v| Convergecast::new(parent[v.index()], &children[v.index()], 1, AggOp::Sum))
        .collect();
    let out = ctx.run_phase(programs)?;
    metrics.add(out.metrics);
    let subtree_size: Vec<u64> = out.programs.iter().map(|p| p.subtree_value()).collect();
    let total = out.programs[root.index()]
        .result()
        .ok_or_else(|| EmbedError::Internal("root missed the size convergecast".into()))?;

    // 4. Eccentricity of the root by max-convergecast of depths.
    let programs: Vec<Convergecast> = g
        .vertices()
        .map(|v| {
            Convergecast::new(
                parent[v.index()],
                &children[v.index()],
                depth[v.index()] as u64,
                AggOp::Max,
            )
        })
        .collect();
    let out = ctx.run_phase(programs)?;
    metrics.add(out.metrics);
    let ecc = out.programs[root.index()]
        .result()
        .ok_or_else(|| EmbedError::Internal("root missed the depth convergecast".into()))?;

    // 5. Broadcast n and the diameter estimate down the tree.
    for value in [total as u32, (2 * ecc) as u32] {
        let programs: Vec<Downcast> = g
            .vertices()
            .map(|v| {
                Downcast::new(
                    &children[v.index()],
                    if v == root { Some(value) } else { None },
                )
            })
            .collect();
        let out = ctx.run_phase(programs)?;
        metrics.add(out.metrics);
    }

    // The kernel leaves `phase_rounds` zeroed; everything above is setup.
    metrics.phase_rounds.setup = metrics.rounds;

    let tree = GlobalTree {
        root,
        parent,
        children,
        depth,
        subtree_size,
    };
    Ok((
        Setup {
            tree,
            n: total,
            diameter_estimate: 2 * ecc,
        },
        metrics,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use planar_lib::gen;

    #[test]
    fn setup_on_grid() {
        let g = gen::grid(4, 5);
        let (setup, metrics) = run_setup(&g, &SimConfig::default()).unwrap();
        assert_eq!(setup.n, 20);
        assert_eq!(setup.tree.root, VertexId(19));
        assert_eq!(setup.tree.subtree_size[19], 20);
        // Root is a grid corner: ecc = D = 7, estimate = 14.
        assert_eq!(setup.diameter_estimate, 14);
        // Setup is a constant number of O(D) protocols.
        assert!(metrics.rounds <= 12 * 7, "rounds = {}", metrics.rounds);
        // Parent pointers form a BFS tree: depths differ by one.
        for v in g.vertices() {
            if let Some(p) = setup.tree.parent[v.index()] {
                assert_eq!(setup.tree.depth[v.index()], setup.tree.depth[p.index()] + 1);
            }
        }
    }

    #[test]
    fn setup_detects_disconnection() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(matches!(
            run_setup(&g, &SimConfig::default()),
            Err(EmbedError::Disconnected)
        ));
    }

    #[test]
    fn setup_single_vertex() {
        let g = Graph::new(1);
        let (setup, metrics) = run_setup(&g, &SimConfig::default()).unwrap();
        assert_eq!(setup.n, 1);
        assert_eq!(metrics.rounds, 0);
        assert_eq!(setup.tree.root, VertexId(0));
    }

    #[test]
    fn subtree_sizes_sum_correctly() {
        let g = gen::random_tree(30, 4);
        let (setup, _) = run_setup(&g, &SimConfig::default()).unwrap();
        assert_eq!(setup.tree.subtree_size[setup.tree.root.index()], 30);
        for v in g.vertices() {
            let expected: u64 = setup.tree.children[v.index()]
                .iter()
                .map(|c| setup.tree.subtree_size[c.index()])
                .sum::<u64>()
                + 1;
            assert_eq!(setup.tree.subtree_size[v.index()], expected);
        }
    }
}
