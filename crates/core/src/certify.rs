//! Distributed certification of driver outputs: the bridge between the
//! embedder and the [`planar_cert`] proof-labeling subsystem.
//!
//! [`verify_embedding`](crate::verify_embedding) is a *centralized*
//! self-check — it collects the whole rotation, which no CONGEST node
//! could do. The functions here are its distributed counterparts: the
//! prover ([`planar_cert::build_certificates`]) assigns each node
//! `O(Δ log n)` bits, and the O(1)-round verifier runs as an ordinary
//! [`NodeProgram`](congest_sim::NodeProgram) on the kernels, so a
//! certified outcome means *every node locally accepted* the embedding —
//! and any corruption would have made at least one node reject.

use congest_sim::SimConfig;
use planar_cert::{
    build_certificates, verify_distributed_with, CertError, Certificate, VerifyReport,
};
use planar_graph::{Graph, RotationSystem, VertexId};

use crate::error::EmbedError;
use crate::{EmbedderConfig, Kernel};

/// The prover/verifier artifacts of one certification run.
#[derive(Clone, Debug, PartialEq)]
pub struct Certification {
    /// Per-node certificates (index = vertex id), `O(Δ log n)` bits each.
    pub certificates: Vec<Certificate>,
    /// The distributed verifier's report: per-node verdicts and the O(1)
    /// round cost (`report.metrics.phase_rounds.cert`).
    pub report: VerifyReport,
}

impl Certification {
    /// Whether every node accepted.
    pub fn accepted(&self) -> bool {
        self.report.accepted
    }
}

fn lift(e: CertError) -> EmbedError {
    match e {
        CertError::BadInput(msg) => EmbedError::Internal(format!("certification: {msg}")),
        CertError::Sim(e) => EmbedError::Sim(e),
        CertError::Graph(e) => EmbedError::Graph(e),
        // CertError is non-exhaustive; treat future variants as internal.
        e => EmbedError::Internal(format!("certification: {e}")),
    }
}

/// Builds certificates for `rotation` and runs the distributed verifier
/// on `g`, honoring the embedder's kernel settings (fault plan on
/// `cfg.sim`, reliable delivery if configured).
///
/// # Errors
///
/// [`EmbedError::Internal`] if the rotation does not match `g` (prover
/// misuse); [`EmbedError::Sim`] if the verifier simulation aborts. A
/// *rejecting* verification is not an error — inspect
/// [`Certification::accepted`].
pub fn certify_embedding(
    g: &Graph,
    rotation: &RotationSystem,
    cfg: &EmbedderConfig,
) -> Result<Certification, EmbedError> {
    let certificates = build_certificates(g, rotation).map_err(lift)?;
    certify_with_certificates(g, rotation, certificates, cfg)
}

/// Runs the distributed verifier on a *pre-supplied* certificate set —
/// the entry the incremental re-embedding path uses after splicing a
/// resident set against a scratch build
/// ([`planar_cert::splice_certificates`]). Since a spliced set is
/// element-wise equal to the scratch set, the verdict is identical to
/// [`certify_embedding`]'s; what differs is only the accounting of which
/// certificates had to be re-distributed.
///
/// # Errors
///
/// As [`certify_embedding`].
pub fn certify_with_certificates(
    g: &Graph,
    rotation: &RotationSystem,
    certificates: Vec<Certificate>,
    cfg: &EmbedderConfig,
) -> Result<Certification, EmbedError> {
    let verifier_kernel = match cfg.kernel {
        Kernel::Fast => planar_cert::Kernel::Fast,
        Kernel::Reference => planar_cert::Kernel::Reference,
    };
    let report = verify_distributed_with(
        g,
        rotation,
        &certificates,
        &cfg.sim,
        cfg.reliability.as_ref(),
        verifier_kernel,
    )
    .map_err(lift)?;
    Ok(Certification {
        certificates,
        report,
    })
}

/// The distributed counterpart of
/// [`verify_surviving_embedding`](crate::verify_surviving_embedding):
/// restricts `rotation` to the subgraph induced by the vertices *not* in
/// `crashed` (same compaction — survivors renumbered `0..k` in increasing
/// original id, cyclic orders filtered to surviving neighbors) and
/// certifies the restriction distributedly among the survivors.
///
/// The verification itself runs on a *clean* network (`sim` without the
/// fault plan that degraded the original run): it is a post-hoc audit by
/// the surviving nodes, not a re-enactment of the failure.
///
/// # Errors
///
/// As [`certify_embedding`], on the induced subgraph.
pub fn certify_surviving_embedding(
    g: &Graph,
    rotation: &RotationSystem,
    crashed: &[VertexId],
    cfg: &EmbedderConfig,
) -> Result<Certification, EmbedError> {
    let n = g.vertex_count();
    if rotation.vertex_count() != n {
        return Err(EmbedError::Internal(format!(
            "certification: graph has {n} vertices, rotation {}",
            rotation.vertex_count()
        )));
    }
    let mut alive = vec![true; n];
    for &v in crashed {
        if v.index() < n {
            alive[v.index()] = false;
        }
    }
    let mut remap = vec![usize::MAX; n];
    let mut survivors = Vec::new();
    for v in 0..n {
        if alive[v] {
            remap[v] = survivors.len();
            survivors.push(v);
        }
    }
    let mut edges = Vec::new();
    for v in g.vertices() {
        if !alive[v.index()] {
            continue;
        }
        for &w in g.neighbors(v) {
            if alive[w.index()] && v.0 < w.0 {
                edges.push((remap[v.index()] as u32, remap[w.index()] as u32));
            }
        }
    }
    let sub = Graph::from_edges(survivors.len(), edges).map_err(EmbedError::Graph)?;
    let orders: Vec<Vec<VertexId>> = survivors
        .iter()
        .map(|&v| {
            rotation
                .order_at(VertexId::from_index(v))
                .iter()
                .filter(|w| alive[w.index()])
                .map(|w| VertexId::from_index(remap[w.index()]))
                .collect()
        })
        .collect();
    let restricted = RotationSystem::new(&sub, orders).map_err(EmbedError::Graph)?;
    let clean = EmbedderConfig {
        sim: SimConfig {
            faults: congest_sim::FaultPlan::default(),
            ..cfg.sim.clone()
        },
        ..cfg.clone()
    };
    certify_embedding(&sub, &restricted, &clean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{embed_distributed, EmbedderConfig};
    use planar_lib::gen;

    #[test]
    fn driver_outputs_certify_in_constant_rounds() {
        for g in [
            gen::grid(4, 5),
            gen::triangulated_grid(3, 4),
            gen::random_outerplanar(14, 11),
            gen::random_planar(16, 30, 5),
        ] {
            let out = embed_distributed(&g, &EmbedderConfig::default()).unwrap();
            let cert = certify_embedding(&g, &out.rotation, &EmbedderConfig::default()).unwrap();
            assert!(cert.accepted(), "rejections: {:?}", cert.report.rejections);
            assert!(cert.report.metrics.rounds <= 2);
            assert_eq!(
                cert.report.metrics.phase_rounds.cert,
                cert.report.metrics.rounds
            );
        }
    }

    #[test]
    fn surviving_restriction_certifies_after_crash_removal() {
        // Embed fault-free, then audit the rotation restricted to the
        // graph minus two "crashed" corners — the distributed analogue of
        // verify_surviving_embedding.
        let g = gen::grid(4, 4);
        let out = embed_distributed(&g, &EmbedderConfig::default()).unwrap();
        let crashed = [VertexId(0), VertexId(15)];
        let cert =
            certify_surviving_embedding(&g, &out.rotation, &crashed, &EmbedderConfig::default())
                .unwrap();
        assert!(cert.accepted(), "rejections: {:?}", cert.report.rejections);
        assert_eq!(cert.certificates.len(), 14);
        crate::verify_surviving_embedding(&g, &out.rotation, &crashed).unwrap();
    }

    #[test]
    fn empty_crash_list_matches_full_certification() {
        let g = gen::wheel(9);
        let out = embed_distributed(&g, &EmbedderConfig::default()).unwrap();
        let cfg = EmbedderConfig::default();
        let full = certify_embedding(&g, &out.rotation, &cfg).unwrap();
        let surviving = certify_surviving_embedding(&g, &out.rotation, &[], &cfg).unwrap();
        assert_eq!(full, surviving);
    }

    #[test]
    fn mismatched_rotation_is_prover_misuse() {
        let g = gen::cycle(6);
        let other = gen::path(6);
        let rot = planar_lib::embed(&other).unwrap();
        assert!(matches!(
            certify_embedding(&g, &rot, &EmbedderConfig::default()),
            Err(EmbedError::Internal(_) | EmbedError::Graph(_))
        ));
    }
}
