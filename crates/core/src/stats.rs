//! Execution statistics validating the paper's structural lemmas.
//!
//! Every run of the distributed embedder records, per recursion level, the
//! quantities Lemmas 4.2, 4.3 and the Section 5.3 counting argument bound:
//! part sizes (`<= 2|T_s|/3`), part diameters (`< depth(T_s)`), recursion
//! depth (`<= min{log_{3/2} n, D}`), and the number of parts surviving to
//! the restricted path-coordinated merge (`O(D)`).

use congest_sim::PhaseRounds;
use serde::{Deserialize, Serialize};

/// Statistics of one merge (one recursion node's Section 5.3 execution).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MergeStats {
    /// `|T_s|` — size of the subproblem.
    pub subtree_size: usize,
    /// `|P_0|` — length of the coordinator path.
    pub p0_len: usize,
    /// Number of hanging parts `k` before any merging.
    pub initial_parts: usize,
    /// Parts retired by the single-connection rules (steps 2c/2d).
    pub retired_single: usize,
    /// Parts retired by the two-connection rules (steps 3–5).
    pub retired_double: usize,
    /// Parts set aside as long monotone paths (step 2i).
    pub paused_paths: usize,
    /// Parts remaining at the restricted path-coordinated merge (step 6).
    /// The paper's planarity counting argument bounds this by `O(D)`.
    pub final_parts: usize,
    /// Kernel rounds spent in symmetry breaking (virtual, Lemma 5.3).
    pub symmetry_rounds_virtual: usize,
}

/// Statistics of one recursion level (all subproblems at that level run in
/// parallel).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LevelStats {
    /// Recursion depth of this level (0 = root problem).
    pub level: usize,
    /// Number of subproblems processed at this level.
    pub problems: usize,
    /// Largest subproblem size.
    pub max_size: usize,
    /// Largest observed ratio `|P_i| / |T_s|` over all partitions at this
    /// level (Lemma 4.2 asserts `<= 2/3`).
    pub max_child_ratio: f64,
    /// Largest part diameter observed relative to `depth(T_s)` (Lemma 4.2
    /// asserts part diameter `<= depth(T_s) - 1`... measured as a ratio to
    /// the global BFS depth).
    pub max_part_depth: usize,
    /// Rounds consumed by this level (parallel across subproblems).
    pub rounds: usize,
}

/// Aggregate statistics of a whole distributed-embedding run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RecursionStats {
    /// Number of vertices.
    pub n: usize,
    /// Exact BFS depth of the global tree (a lower bound on `D` within a
    /// factor 2).
    pub bfs_depth: usize,
    /// Recursion depth reached.
    pub depth: usize,
    /// Per-level statistics.
    pub levels: Vec<LevelStats>,
    /// Per-merge statistics (all recursion nodes).
    pub merges: Vec<MergeStats>,
    /// Whether every intermediate partition passed the safety check
    /// (Definition 3.1); only evaluated when invariant checking is enabled.
    pub safety_checked: bool,
    /// Kernel rounds consumed across phases, tallied *sequentially* (the
    /// same quantity `EmbedError::Degraded` reports as `rounds_used`). An
    /// upper bound on the parallel round count in `Metrics::rounds`.
    pub sequential_rounds: usize,
    /// Per-phase attribution of `sequential_rounds`; the driver maintains
    /// `phase_rounds.sum() == sequential_rounds` as an invariant.
    pub phase_rounds: PhaseRounds,
}

impl RecursionStats {
    /// Largest number of parts any restricted path-coordinated merge had to
    /// handle — the quantity the paper bounds by `O(D)`.
    pub fn max_final_parts(&self) -> usize {
        self.merges.iter().map(|m| m.final_parts).max().unwrap_or(0)
    }

    /// Largest `|P_i| / |T_s|` ratio over the whole run (Lemma 4.2: `<= 2/3`).
    pub fn max_child_ratio(&self) -> f64 {
        self.levels
            .iter()
            .map(|l| l.max_child_ratio)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let stats = RecursionStats {
            n: 10,
            bfs_depth: 3,
            depth: 2,
            levels: vec![
                LevelStats {
                    max_child_ratio: 0.5,
                    ..Default::default()
                },
                LevelStats {
                    max_child_ratio: 0.66,
                    ..Default::default()
                },
            ],
            merges: vec![
                MergeStats {
                    final_parts: 3,
                    ..Default::default()
                },
                MergeStats {
                    final_parts: 7,
                    ..Default::default()
                },
            ],
            safety_checked: true,
            ..Default::default()
        };
        assert_eq!(stats.max_final_parts(), 7);
        assert!((stats.max_child_ratio() - 0.66).abs() < 1e-9);
    }
}
