//! The trivial baseline of footnote 2: "any graph problem can be solved in
//! O(m) rounds in the CONGEST model, simply by gathering the whole network
//! topology and solving the problem locally" — in planar graphs `O(m) =
//! O(n)` rounds.
//!
//! Implemented with honest accounting: a leader is elected (kernel), every
//! edge is shipped to the leader along the BFS tree (packet-scheduled, so
//! congestion near the root is paid for), the leader embeds locally with
//! the centralized DMP embedder, and every vertex's rotation is shipped
//! back down.

use congest_sim::routing::{schedule, Transfer};
use congest_sim::SimConfig;
use planar_graph::Graph;

use crate::driver::EmbeddingOutcome;
use crate::error::EmbedError;
use crate::setup::run_setup;
use crate::stats::RecursionStats;

/// Runs the trivial gather-and-solve baseline.
///
/// # Errors
///
/// Same error surface as [`crate::embed_distributed`]; non-planar inputs
/// are detected by the leader's local embedding attempt.
///
/// # Example
///
/// ```
/// use congest_sim::SimConfig;
/// use planar_embedding::embed_baseline;
/// use planar_lib::gen;
///
/// # fn main() -> Result<(), planar_embedding::EmbedError> {
/// let g = gen::cycle(16);
/// let out = embed_baseline(&g, &SimConfig::default())?;
/// assert!(out.rotation.is_planar_embedding());
/// // Gathering Theta(n) words through the root costs Omega(n / B) rounds.
/// assert!(out.metrics.rounds >= 8);
/// # Ok(())
/// # }
/// ```
pub fn embed_baseline(g: &Graph, cfg: &SimConfig) -> Result<EmbeddingOutcome, EmbedError> {
    let (setup, mut metrics) = run_setup(g, cfg)?;
    let tree = &setup.tree;
    let root = tree.root;

    // Phase 1: gather the topology. Each edge {u, v} is reported once, by
    // its smaller endpoint, as two words routed up the BFS tree.
    let mut transfers: Vec<Transfer> = Vec::new();
    for e in g.edges() {
        let path = tree.path_to_ancestor(e.lo(), root);
        transfers.push(Transfer::new(path, 2));
    }
    metrics.add(schedule(g, &transfers, cfg.budget_words)?);

    // Phase 2: the leader solves locally (computation is free in CONGEST).
    let rotation = planar_lib::embed(g)?;

    // Phase 3: ship each vertex its rotation (deg + 1 words) down the tree.
    let mut transfers: Vec<Transfer> = Vec::new();
    for v in g.vertices() {
        if v == root {
            continue;
        }
        let mut path = tree.path_to_ancestor(v, root);
        path.reverse();
        transfers.push(Transfer::new(path, g.degree(v) + 1));
    }
    metrics.add(schedule(g, &transfers, cfg.budget_words)?);

    let stats = RecursionStats {
        n: g.vertex_count(),
        bfs_depth: tree.tree_depth() as usize,
        ..Default::default()
    };
    Ok(EmbeddingOutcome {
        rotation,
        metrics,
        stats,
        certification: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use planar_lib::gen;

    #[test]
    fn baseline_embeds_and_costs_linear() {
        let g = gen::grid(6, 6);
        let out = embed_baseline(&g, &SimConfig::default()).unwrap();
        assert!(out.rotation.is_planar_embedding());
        // Gathering ~2m words through the root's <= 4 edges with budget 8:
        // at least m/16 rounds; and at least D rounds.
        let m = g.edge_count();
        assert!(out.metrics.rounds >= m / 16);
    }

    #[test]
    fn baseline_rejects_nonplanar() {
        assert!(matches!(
            embed_baseline(&gen::complete(5), &SimConfig::default()),
            Err(EmbedError::NonPlanar)
        ));
    }

    #[test]
    fn baseline_scales_linearly_in_n() {
        // Rounds on a path should grow ~linearly: the leader sits at one
        // end, so everything funnels through a single edge.
        let r1 = embed_baseline(&gen::path(64), &SimConfig::default())
            .unwrap()
            .metrics
            .rounds;
        let r2 = embed_baseline(&gen::path(128), &SimConfig::default())
            .unwrap()
            .metrics
            .rounds;
        assert!(r2 as f64 >= 1.6 * r1 as f64, "r1 = {r1}, r2 = {r2}");
    }
}
