//! Parts (the units of the paper's partition framework, Section 3) and
//! their invariants.
//!
//! A *part* is a connected set of vertices; an edge is *embedded* when both
//! endpoints are in the same part and *half-embedded* otherwise. The safety
//! property (Definition 3.1) guarantees that in any planar embedding the
//! half-embedded edges of a part all lie in one face; [`verify_part`] checks
//! exactly that consequence by computing a pinned embedding of the part.

use std::collections::{HashMap, HashSet};

use planar_graph::biconnected::BiconnectedDecomposition;
use planar_graph::{Graph, VertexId};
use planar_lib::embed_pinned;

use crate::error::EmbedError;

/// A part of the evolving partition, as tracked by the merge driver.
#[derive(Clone, Debug)]
pub struct PartState {
    /// Members, sorted ascending.
    pub members: Vec<VertexId>,
    /// The part leader (maximum-id member), the endpoint of all summary
    /// transfers.
    pub leader: VertexId,
}

impl PartState {
    /// Creates a part from an arbitrary member list (sorted and deduped).
    pub fn new(mut members: Vec<VertexId>) -> Self {
        members.sort();
        members.dedup();
        let leader = *members.last().expect("parts are non-empty");
        PartState { members, leader }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if the part has no members (never happens for valid parts).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, v: VertexId) -> bool {
        self.members.binary_search(&v).is_ok()
    }

    /// Merges several parts into one.
    pub fn union(parts: &[&PartState]) -> PartState {
        let mut members = Vec::new();
        for p in parts {
            members.extend_from_slice(&p.members);
        }
        PartState::new(members)
    }
}

/// The half-embedded edges of a part: pairs `(inside, outside)`.
pub fn half_embedded_edges(g: &Graph, members: &[VertexId]) -> Vec<(VertexId, VertexId)> {
    let set: HashSet<VertexId> = members.iter().copied().collect();
    let mut out = Vec::new();
    for &v in members {
        for &w in g.neighbors(v) {
            if !set.contains(&w) {
                out.push((v, w));
            }
        }
    }
    out.sort();
    out
}

/// The attachment vertices of a part: members incident to at least one
/// half-embedded edge, sorted.
pub fn attachments(g: &Graph, members: &[VertexId]) -> Vec<VertexId> {
    let mut att: Vec<VertexId> = half_embedded_edges(g, members)
        .into_iter()
        .map(|(v, _)| v)
        .collect();
    att.sort();
    att.dedup();
    att
}

/// Checks the consequence of the safety property (Definition 3.1 /
/// Figure 1): the part's induced subgraph is planar-embeddable with all
/// attachment vertices on one common face, and the part is connected.
///
/// # Errors
///
/// * [`EmbedError::Internal`] if the part is disconnected or the pinned
///   embedding fails despite the graph being planar (a violation of the
///   framework's safety reasoning);
/// * [`EmbedError::NonPlanar`] if the part's subgraph is itself non-planar.
pub fn verify_part(g: &Graph, members: &[VertexId]) -> Result<(), EmbedError> {
    let (sub, map) = g.induced_subgraph(members)?;
    if !sub.is_connected() {
        return Err(EmbedError::Internal(format!(
            "part with {} members is not connected",
            members.len()
        )));
    }
    let reverse: HashMap<VertexId, VertexId> = map
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, VertexId::from_index(i)))
        .collect();
    let pins: Vec<VertexId> = attachments(g, members).iter().map(|a| reverse[a]).collect();
    embed_pinned(&sub, &pins)?;
    Ok(())
}

/// Checks Definition 3.1 directly on a full partition: every non-trivial
/// part (one whose induced subgraph is not a tree) leaves `V \ P_i`
/// connected.
pub fn partition_is_safe(g: &Graph, parts: &[Vec<VertexId>]) -> bool {
    let n = g.vertex_count();
    for part in parts {
        let set: HashSet<VertexId> = part.iter().copied().collect();
        // Trivial part (induces a forest)? Count induced edges.
        let induced_edges = part
            .iter()
            .map(|&v| {
                g.neighbors(v)
                    .iter()
                    .filter(|&&w| v < w && set.contains(&w))
                    .count()
            })
            .sum::<usize>();
        if induced_edges < part.len() {
            continue; // a tree/forest: trivial, no constraint
        }
        // Non-trivial: complement must be connected (or empty).
        let complement: Vec<VertexId> = g.vertices().filter(|v| !set.contains(v)).collect();
        if complement.is_empty() {
            continue;
        }
        let (csub, _) = g
            .induced_subgraph(&complement)
            .expect("complement vertices are valid");
        if !csub.is_connected() {
            return false;
        }
    }
    debug_assert!(
        parts.iter().map(Vec::len).sum::<usize>() <= n,
        "parts must be disjoint"
    );
    true
}

/// The charged size, in `O(log n)` words, of a part's interface summary
/// restricted to a set of relevant attachment vertices: constant overhead,
/// two words per boundary block (its id), and one word per relevant
/// attachment slot.
///
/// This is the compressed-PQ-tree accounting of DESIGN.md §1: by
/// Observation 3.2 the interface is determined by the block decomposition
/// and per-block fixed orders, so a summary listing each relevant block and
/// the order of relevant attachments within it suffices.
pub fn summary_words(g: &Graph, members: &[VertexId], relevant: &[VertexId]) -> usize {
    let (sub, map) = g.induced_subgraph(members).expect("valid members");
    let reverse: HashMap<VertexId, VertexId> = map
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, VertexId::from_index(i)))
        .collect();
    let bc = BiconnectedDecomposition::compute(&sub);
    let mut relevant_blocks: HashSet<usize> = HashSet::new();
    let mut slots = 0usize;
    for &r in relevant {
        if let Some(&local) = reverse.get(&r) {
            slots += 1;
            for &b in bc.blocks_of_vertex(local) {
                relevant_blocks.insert(b);
            }
        }
    }
    4 + 2 * relevant_blocks.len() + slots
}

#[cfg(test)]
mod tests {
    use super::*;
    use planar_lib::gen;

    #[test]
    fn part_state_basics() {
        let p = PartState::new(vec![VertexId(3), VertexId(1), VertexId(3)]);
        assert_eq!(p.members, vec![VertexId(1), VertexId(3)]);
        assert_eq!(p.leader, VertexId(3));
        assert!(p.contains(VertexId(1)));
        assert!(!p.contains(VertexId(2)));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn union_of_parts() {
        let a = PartState::new(vec![VertexId(0), VertexId(1)]);
        let b = PartState::new(vec![VertexId(5), VertexId(2)]);
        let u = PartState::union(&[&a, &b]);
        assert_eq!(u.len(), 4);
        assert_eq!(u.leader, VertexId(5));
    }

    #[test]
    fn half_embedded_and_attachments() {
        let g = gen::cycle(6);
        let members = vec![VertexId(0), VertexId(1), VertexId(2)];
        let he = half_embedded_edges(&g, &members);
        assert_eq!(
            he,
            vec![(VertexId(0), VertexId(5)), (VertexId(2), VertexId(3))]
        );
        assert_eq!(attachments(&g, &members), vec![VertexId(0), VertexId(2)]);
    }

    #[test]
    fn verify_part_accepts_cycle_arc() {
        let g = gen::cycle(8);
        let members: Vec<VertexId> = (0..4).map(VertexId).collect();
        verify_part(&g, &members).unwrap();
    }

    #[test]
    fn verify_part_rejects_disconnected() {
        let g = gen::cycle(8);
        let members = vec![VertexId(0), VertexId(4)];
        assert!(matches!(
            verify_part(&g, &members),
            Err(EmbedError::Internal(_))
        ));
    }

    #[test]
    fn safety_of_paper_partition_vs_unsafe() {
        // Figure 6 analogue on a theta graph with hubs 0,1 and four 4-edge
        // paths (interiors {2,3,4}, {5,6,7}, {8,9,10}, {11,12,13}).
        let g = gen::theta(4, 4);
        // A single path interior is a tree: trivial, hence always safe.
        let path1: Vec<VertexId> = vec![VertexId(2), VertexId(3), VertexId(4)];
        assert!(partition_is_safe(&g, std::slice::from_ref(&path1)));
        // Both hubs + one path interior induce a *tree* too (hubs are not
        // adjacent), so even though removing it disconnects the rest, the
        // part is trivial and Definition 3.1 does not constrain it.
        let tree_part: Vec<VertexId> = vec![
            VertexId(0),
            VertexId(1),
            VertexId(2),
            VertexId(3),
            VertexId(4),
        ];
        assert!(partition_is_safe(&g, &[tree_part]));
        // Both hubs + two path interiors induce a cycle: non-trivial, and
        // removing it separates the remaining two path interiors -> unsafe.
        let cyc: Vec<VertexId> = vec![
            VertexId(0),
            VertexId(1),
            VertexId(2),
            VertexId(3),
            VertexId(4),
            VertexId(5),
            VertexId(6),
            VertexId(7),
        ];
        assert!(!partition_is_safe(&g, std::slice::from_ref(&cyc)));
        // With only three paths total the complement is a single path
        // interior, which is connected -> safe.
        let g3 = gen::theta(3, 4);
        assert!(partition_is_safe(&g3, &[cyc]));
    }

    #[test]
    fn summary_words_scale_with_relevant_set() {
        let g = gen::grid(3, 3);
        let members: Vec<VertexId> = (0..6).map(VertexId).collect(); // two grid rows
        let att = attachments(&g, &members);
        let full = summary_words(&g, &members, &att);
        let partial = summary_words(&g, &members, &att[..1]);
        assert!(full > partial);
        assert!(partial >= 4);
    }
}
