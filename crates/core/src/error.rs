use std::error::Error;
use std::fmt;

use congest_sim::routing::RoutingError;
use congest_sim::SimError;
use planar_graph::GraphError;
use planar_lib::PlanarityError;

/// Errors produced by the distributed embedding algorithm.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum EmbedError {
    /// The input network is not planar (the algorithm doubles as a planarity
    /// test: some merge found an interface with no planar completion).
    NonPlanar,
    /// The input network is disconnected; a distributed network is connected
    /// by definition, so this is an input error.
    Disconnected,
    /// The input network is empty.
    EmptyGraph,
    /// A kernel simulation failed (budget violation etc.) — indicates an
    /// internal protocol bug, surfaced rather than hidden.
    Sim(SimError),
    /// A routed transfer was malformed — indicates an internal bug.
    Routing(RoutingError),
    /// An internal invariant of the partial-embedding machinery failed.
    Internal(String),
    /// An underlying graph error.
    Graph(GraphError),
    /// The run was degraded by injected faults (crash-stop nodes, message
    /// loss) rather than failing outright: the algorithm terminated — it did
    /// not hang — but could not produce a verified embedding of the full
    /// network. Only produced in fault mode (a non-empty
    /// [`FaultPlan`](congest_sim::FaultPlan) on the simulator config).
    Degraded {
        /// Nodes not scheduled to crash by the fault plan.
        surviving_nodes: usize,
        /// Kernel rounds consumed across phases before the run degraded
        /// (sequential tally, an upper bound on the parallel cost).
        /// Completed phases are charged exactly; a phase killed by the
        /// watchdog or round cap is charged its configured limit. A phase
        /// that failed *without* a round-limit error (e.g. a postcondition
        /// it never established) returns no metrics and contributes
        /// nothing, so the total is a lower bound on rounds executed.
        rounds_used: usize,
        /// Whether the embedding restricted to the surviving subgraph was
        /// re-verified *successfully*. `true` only when verification ran
        /// and passed (the [`DegradedCause::SurvivorsOnly`] outcome);
        /// `false` both when verification ran and failed
        /// ([`DegradedCause::OutputUnverified`]) and when the run failed
        /// before producing anything to verify. Callers must not treat a
        /// degraded result as a certified embedding unless this is `true`.
        verified: bool,
        /// What specifically went wrong.
        cause: DegradedCause,
    },
}

/// The reason a faulty run ended in [`EmbedError::Degraded`].
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum DegradedCause {
    /// A kernel simulation aborted — e.g. the round-budget watchdog fired
    /// ([`SimError::WatchdogTimeout`]) or a send targeted a crashed node
    /// under [`CrashPolicy::Error`](congest_sim::CrashPolicy). The original
    /// error is preserved losslessly.
    Sim(SimError),
    /// A protocol phase terminated without establishing its postcondition
    /// (a convergecast missed the root, the centroid walk never finished, a
    /// merge was handed fault-corrupted part state, ...).
    PhaseIncomplete {
        /// The phase that came up short: `"setup"`, `"partition"`,
        /// `"symmetry"`, `"merge"`, or `"cert"`.
        phase: &'static str,
    },
    /// All phases completed but the post-run self-verification could not
    /// certify the computed rotation on the surviving subgraph.
    OutputUnverified,
    /// All phases completed and the rotation restricted to the surviving
    /// subgraph re-verified successfully — but nodes crash-stopped during
    /// the run, so the result covers only the survivors, not the full
    /// input network. The only cause paired with `verified: true`.
    SurvivorsOnly,
}

impl fmt::Display for DegradedCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradedCause::Sim(e) => write!(f, "simulation aborted: {e}"),
            DegradedCause::PhaseIncomplete { phase } => {
                write!(f, "the {phase} phase terminated without its postcondition")
            }
            DegradedCause::OutputUnverified => {
                write!(
                    f,
                    "output failed self-verification on the surviving subgraph"
                )
            }
            DegradedCause::SurvivorsOnly => {
                write!(
                    f,
                    "embedding verified on the surviving subgraph only (nodes crashed)"
                )
            }
        }
    }
}

impl Error for DegradedCause {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DegradedCause::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl EmbedError {
    /// For [`EmbedError::Degraded`], whether the surviving embedding was
    /// re-verified successfully; `None` for every other error.
    ///
    /// `Some(true)` is the only value under which a degraded result may be
    /// treated as a certified embedding of the surviving subgraph.
    pub fn degraded_verified(&self) -> Option<bool> {
        match self {
            EmbedError::Degraded { verified, .. } => Some(*verified),
            _ => None,
        }
    }
}

impl fmt::Display for EmbedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmbedError::NonPlanar => write!(f, "input network is not planar"),
            EmbedError::Disconnected => write!(f, "input network is not connected"),
            EmbedError::EmptyGraph => write!(f, "input network has no vertices"),
            EmbedError::Sim(e) => write!(f, "simulation error: {e}"),
            EmbedError::Routing(e) => write!(f, "routing error: {e}"),
            EmbedError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
            EmbedError::Graph(e) => write!(f, "graph error: {e}"),
            EmbedError::Degraded {
                surviving_nodes,
                rounds_used,
                verified,
                cause,
            } => write!(
                f,
                "run degraded by injected faults after {rounds_used} rounds \
                 ({surviving_nodes} surviving nodes, survivors {}verified): {cause}",
                if *verified { "" } else { "not " }
            ),
        }
    }
}

impl Error for EmbedError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EmbedError::Sim(e) => Some(e),
            EmbedError::Routing(e) => Some(e),
            EmbedError::Graph(e) => Some(e),
            EmbedError::Degraded { cause, .. } => Some(cause),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<SimError> for EmbedError {
    fn from(e: SimError) -> Self {
        EmbedError::Sim(e)
    }
}

#[doc(hidden)]
impl From<RoutingError> for EmbedError {
    fn from(e: RoutingError) -> Self {
        EmbedError::Routing(e)
    }
}

#[doc(hidden)]
impl From<GraphError> for EmbedError {
    fn from(e: GraphError) -> Self {
        EmbedError::Graph(e)
    }
}

#[doc(hidden)]
impl From<PlanarityError> for EmbedError {
    fn from(e: PlanarityError) -> Self {
        match e {
            PlanarityError::NonPlanar { .. } | PlanarityError::TooManyEdges { .. } => {
                EmbedError::NonPlanar
            }
            // The partition is safe by construction (Lemma 4.1), and safety
            // guarantees co-facial half-embedded edges *for planar inputs*
            // (Section 3). A part whose half-embedded edges cannot share a
            // face is therefore a planarity witness for the whole network.
            PlanarityError::UnsatisfiableConstraint { .. } => EmbedError::NonPlanar,
            PlanarityError::Graph(g) => EmbedError::Graph(g),
            other => EmbedError::Internal(format!("unexpected planarity error: {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_traits() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EmbedError>();
        assert!(EmbedError::NonPlanar.to_string().contains("not planar"));
    }

    #[test]
    fn degraded_is_lossless_and_sourced() {
        // Satellite requirement: fault-path failures are typed, not
        // stringly — the SimError survives intact behind source().
        let e = EmbedError::Degraded {
            surviving_nodes: 7,
            rounds_used: 42,
            verified: false,
            cause: DegradedCause::Sim(SimError::WatchdogTimeout { limit: 42 }),
        };
        let msg = e.to_string();
        assert!(
            msg.contains("42 rounds") && msg.contains("7 surviving"),
            "{msg}"
        );
        let cause = e.source().expect("Degraded has a source");
        let sim = cause.source().expect("Sim cause chains to the SimError");
        assert!(sim.to_string().contains("watchdog"));

        let p = EmbedError::Degraded {
            surviving_nodes: 3,
            rounds_used: 9,
            verified: false,
            cause: DegradedCause::PhaseIncomplete { phase: "setup" },
        };
        assert!(p.to_string().contains("setup phase"));
    }

    #[test]
    fn degraded_verified_accessor() {
        let v = EmbedError::Degraded {
            surviving_nodes: 5,
            rounds_used: 10,
            verified: true,
            cause: DegradedCause::SurvivorsOnly,
        };
        assert_eq!(v.degraded_verified(), Some(true));
        assert!(v.to_string().contains("survivors verified"));
        let u = EmbedError::Degraded {
            surviving_nodes: 5,
            rounds_used: 10,
            verified: false,
            cause: DegradedCause::OutputUnverified,
        };
        assert_eq!(u.degraded_verified(), Some(false));
        assert!(u.to_string().contains("survivors not verified"));
        assert_eq!(EmbedError::NonPlanar.degraded_verified(), None);
    }

    #[test]
    fn planarity_error_conversion() {
        let e: EmbedError = PlanarityError::NonPlanar { embedded_edges: 3 }.into();
        assert!(matches!(e, EmbedError::NonPlanar));
        // An unsatisfiable pin constraint inside the algorithm is a
        // planarity witness (see the From impl).
        let e: EmbedError = PlanarityError::UnsatisfiableConstraint { reason: "x".into() }.into();
        assert!(matches!(e, EmbedError::NonPlanar));
    }
}
