use std::error::Error;
use std::fmt;

use congest_sim::routing::RoutingError;
use congest_sim::SimError;
use planar_graph::GraphError;
use planar_lib::PlanarityError;

/// Errors produced by the distributed embedding algorithm.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum EmbedError {
    /// The input network is not planar (the algorithm doubles as a planarity
    /// test: some merge found an interface with no planar completion).
    NonPlanar,
    /// The input network is disconnected; a distributed network is connected
    /// by definition, so this is an input error.
    Disconnected,
    /// The input network is empty.
    EmptyGraph,
    /// A kernel simulation failed (budget violation etc.) — indicates an
    /// internal protocol bug, surfaced rather than hidden.
    Sim(SimError),
    /// A routed transfer was malformed — indicates an internal bug.
    Routing(RoutingError),
    /// An internal invariant of the partial-embedding machinery failed.
    Internal(String),
    /// An underlying graph error.
    Graph(GraphError),
}

impl fmt::Display for EmbedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmbedError::NonPlanar => write!(f, "input network is not planar"),
            EmbedError::Disconnected => write!(f, "input network is not connected"),
            EmbedError::EmptyGraph => write!(f, "input network has no vertices"),
            EmbedError::Sim(e) => write!(f, "simulation error: {e}"),
            EmbedError::Routing(e) => write!(f, "routing error: {e}"),
            EmbedError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
            EmbedError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl Error for EmbedError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EmbedError::Sim(e) => Some(e),
            EmbedError::Routing(e) => Some(e),
            EmbedError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<SimError> for EmbedError {
    fn from(e: SimError) -> Self {
        EmbedError::Sim(e)
    }
}

#[doc(hidden)]
impl From<RoutingError> for EmbedError {
    fn from(e: RoutingError) -> Self {
        EmbedError::Routing(e)
    }
}

#[doc(hidden)]
impl From<GraphError> for EmbedError {
    fn from(e: GraphError) -> Self {
        EmbedError::Graph(e)
    }
}

#[doc(hidden)]
impl From<PlanarityError> for EmbedError {
    fn from(e: PlanarityError) -> Self {
        match e {
            PlanarityError::NonPlanar { .. } | PlanarityError::TooManyEdges { .. } => {
                EmbedError::NonPlanar
            }
            // The partition is safe by construction (Lemma 4.1), and safety
            // guarantees co-facial half-embedded edges *for planar inputs*
            // (Section 3). A part whose half-embedded edges cannot share a
            // face is therefore a planarity witness for the whole network.
            PlanarityError::UnsatisfiableConstraint { .. } => EmbedError::NonPlanar,
            PlanarityError::Graph(g) => EmbedError::Graph(g),
            other => EmbedError::Internal(format!("unexpected planarity error: {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_traits() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EmbedError>();
        assert!(EmbedError::NonPlanar.to_string().contains("not planar"));
    }

    #[test]
    fn planarity_error_conversion() {
        let e: EmbedError = PlanarityError::NonPlanar { embedded_edges: 3 }.into();
        assert!(matches!(e, EmbedError::NonPlanar));
        // An unsatisfiable pin constraint inside the algorithm is a
        // planarity witness (see the From impl).
        let e: EmbedError = PlanarityError::UnsatisfiableConstraint { reason: "x".into() }.into();
        assert!(matches!(e, EmbedError::NonPlanar));
    }
}
