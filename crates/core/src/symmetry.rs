//! The symmetry-breaking algorithm of Lemma 5.3.
//!
//! Given a properly colored (outer-)planar *inter-part* graph, the algorithm
//! computes in O(1) message rounds:
//!
//! * disjoint node sets of size >= 2, each inducing a **star** (the `V_i` of
//!   the lemma), and
//! * a partition of the remaining nodes into **color-monotone chains**
//!   (paths along strictly decreasing colors — the lemma's color-distinct
//!   paths) and singletons (paths of length one).
//!
//! The construction: every node points at its smallest-colored smaller
//! neighbor; the pointer graph is a forest (colors strictly decrease along
//! pointers). Leaves of the forest join their parent, with ties among
//! *adjacent* sibling leaves broken by id so every star is an induced star;
//! what remains decomposes into unary chains of the pointer forest, which
//! are color-monotone paths. The paper's full version (its Section 5.4) was
//! never published; this is our reconstruction of an algorithm satisfying
//! the lemma's interface, and it needs no outerplanarity — planarity of the
//! inter-part graph is only needed for the *counting* argument downstream.
//!
//! Exactly five kernel rounds are used, independent of the graph size.

use std::collections::HashMap;

use congest_sim::{run, NodeCtx, NodeProgram, SimConfig, SimError, Words};
use planar_graph::{Graph, VertexId};

use crate::exec::ExecutionContext;

/// Messages of the symmetry-breaking protocol. Every variant is O(1) words.
#[derive(Clone, Debug)]
pub enum SymMsg {
    /// Round 1: announce own color.
    Hello {
        /// The sender's color.
        color: u32,
    },
    /// Round 2: announce the chosen pointer (None at local color minima).
    Pointer {
        /// The neighbor this node points to.
        to: Option<VertexId>,
    },
    /// Round 3: announce whether this node is a pointer-forest leaf.
    LeafStatus {
        /// Leaf flag.
        leaf: bool,
    },
    /// Round 4: announce the star-join decision (target = the center joined,
    /// or None).
    Join {
        /// The center this node joins, if any.
        target: Option<VertexId>,
    },
    /// Round 5: announce whether this node was consumed by a star.
    Consumed {
        /// Consumed flag.
        consumed: bool,
    },
}

impl Words for SymMsg {
    fn words(&self) -> usize {
        match self {
            SymMsg::Hello { .. } => 2,
            SymMsg::Pointer { .. } => 3,
            SymMsg::LeafStatus { .. } => 2,
            SymMsg::Join { .. } => 3,
            SymMsg::Consumed { .. } => 2,
        }
    }
}

/// Per-node state of the Lemma 5.3 protocol.
#[derive(Clone, Debug)]
pub struct SymmetryBreak {
    id: VertexId,
    color: u32,
    phase: u8,
    pointer: Option<VertexId>,
    nbr_color: HashMap<VertexId, u32>,
    nbr_pointer: HashMap<VertexId, Option<VertexId>>,
    nbr_leaf: HashMap<VertexId, bool>,
    children: Vec<VertexId>,
    is_leaf: bool,
    joined: Option<VertexId>,
    joiners: Vec<VertexId>,
    consumed: bool,
    nbr_consumed: HashMap<VertexId, bool>,
    nbr_join: HashMap<VertexId, Option<VertexId>>,
}

impl SymmetryBreak {
    /// Creates the program for a node with the given proper color.
    pub fn new(id: VertexId, color: u32) -> Self {
        SymmetryBreak {
            id,
            color,
            phase: 0,
            pointer: None,
            nbr_color: HashMap::new(),
            nbr_pointer: HashMap::new(),
            nbr_leaf: HashMap::new(),
            children: Vec::new(),
            is_leaf: false,
            joined: None,
            joiners: Vec::new(),
            consumed: false,
            nbr_consumed: HashMap::new(),
            nbr_join: HashMap::new(),
        }
    }

    /// The center this node joined as a star leaf, if any.
    pub fn joined(&self) -> Option<VertexId> {
        self.joined
    }

    /// The leaves that joined this node as a star center.
    pub fn joiners(&self) -> &[VertexId] {
        &self.joiners
    }

    /// Whether this node ended up in a star.
    pub fn consumed(&self) -> bool {
        self.consumed
    }

    /// This node's pointer (its smallest-colored smaller neighbor).
    pub fn pointer(&self) -> Option<VertexId> {
        self.pointer
    }

    /// Children in the pointer forest.
    pub fn children(&self) -> &[VertexId] {
        &self.children
    }

    fn broadcast(&self, ctx: &NodeCtx<'_>, msg: SymMsg) -> Vec<(VertexId, SymMsg)> {
        ctx.neighbors.iter().map(|&w| (w, msg.clone())).collect()
    }
}

impl NodeProgram for SymmetryBreak {
    type Msg = SymMsg;

    fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, SymMsg)> {
        self.broadcast(ctx, SymMsg::Hello { color: self.color })
    }

    fn on_round(
        &mut self,
        ctx: &NodeCtx<'_>,
        inbox: &[(VertexId, SymMsg)],
    ) -> Vec<(VertexId, SymMsg)> {
        // Event-driven: record every arrival in its per-type buffer, then
        // advance through the phases as soon as a phase's messages are
        // complete (one from every neighbor). On a perfect network this
        // transitions in lockstep — exactly the original five rounds — but
        // it also stays correct when retransmissions (the fault-mode
        // [`Reliable`](congest_sim::protocols::Reliable) wrapper) spread a
        // phase's arrivals over several rounds. The `is_none()` guards keep
        // duplicated deliveries (unwrapped faulty runs) idempotent.
        for (from, msg) in inbox {
            match msg {
                SymMsg::Hello { color } => {
                    self.nbr_color.insert(*from, *color);
                }
                SymMsg::Pointer { to } => {
                    if self.nbr_pointer.insert(*from, *to).is_none() && *to == Some(self.id) {
                        self.children.push(*from);
                    }
                }
                SymMsg::LeafStatus { leaf } => {
                    self.nbr_leaf.insert(*from, *leaf);
                }
                SymMsg::Join { target } => {
                    if self.nbr_join.insert(*from, *target).is_none() && *target == Some(self.id) {
                        self.joiners.push(*from);
                    }
                }
                SymMsg::Consumed { consumed } => {
                    self.nbr_consumed.insert(*from, *consumed);
                }
            }
        }
        let deg = ctx.neighbors.len();
        let mut out = Vec::new();
        if self.phase == 0 && self.nbr_color.len() == deg {
            self.phase = 1;
            // Point at the smallest-(color, id) strictly smaller-colored
            // neighbor.
            self.pointer = self
                .nbr_color
                .iter()
                .filter(|&(_, &c)| c < self.color)
                .min_by_key(|&(&w, &c)| (c, w))
                .map(|(&w, _)| w);
            out.extend(self.broadcast(ctx, SymMsg::Pointer { to: self.pointer }));
        }
        if self.phase == 1 && self.nbr_pointer.len() == deg {
            self.phase = 2;
            self.children.sort();
            self.is_leaf = self.children.is_empty() && self.pointer.is_some();
            out.extend(self.broadcast(ctx, SymMsg::LeafStatus { leaf: self.is_leaf }));
        }
        if self.phase == 2 && self.nbr_leaf.len() == deg {
            self.phase = 3;
            if self.is_leaf {
                // Accept unless an adjacent sibling leaf with smaller id
                // exists (ties among adjacent siblings broken by id so
                // the star stays induced).
                let blocked = self.nbr_leaf.iter().any(|(&w, &leaf)| {
                    leaf && w < self.id
                        && self.nbr_pointer.get(&w).copied().flatten() == self.pointer
                });
                if !blocked {
                    self.joined = self.pointer;
                }
            }
            out.extend(self.broadcast(
                ctx,
                SymMsg::Join {
                    target: self.joined,
                },
            ));
        }
        if self.phase == 3 && self.nbr_join.len() == deg {
            self.phase = 4;
            self.joiners.sort();
            self.consumed = self.joined.is_some() || !self.joiners.is_empty();
            out.extend(self.broadcast(
                ctx,
                SymMsg::Consumed {
                    consumed: self.consumed,
                },
            ));
        }
        if self.phase == 4 && self.nbr_consumed.len() == deg {
            self.phase = 5; // done; quiescence follows
        }
        out
    }
}

/// The orchestrated outcome of one symmetry-breaking run.
#[derive(Clone, Debug)]
pub struct SymmetryOutcome {
    /// Disjoint induced stars of size >= 2: `(center, leaves)`.
    pub stars: Vec<(VertexId, Vec<VertexId>)>,
    /// Color-monotone chains of the unconsumed nodes (length 1 =
    /// singleton, length 2 = pair to star-merge, length >= 3 = set-aside
    /// path, step 2i of the paper's algorithm).
    pub chains: Vec<Vec<VertexId>>,
    /// Kernel rounds used (constant: five).
    pub rounds: usize,
}

/// Runs Lemma 5.3 on the (virtual) graph `gv` with a proper coloring.
///
/// # Errors
///
/// Propagates kernel errors.
///
/// # Panics
///
/// Panics if `colors.len() != gv.vertex_count()`.
pub fn symmetry_break(
    gv: &Graph,
    colors: &[u32],
    cfg: &SimConfig,
) -> Result<SymmetryOutcome, SimError> {
    assert_eq!(colors.len(), gv.vertex_count());
    let out = run(gv, symmetry_programs(gv, colors), cfg)?;
    extract_outcome(gv, out.programs, out.metrics.rounds)
}

/// [`symmetry_break`] against a full [`ExecutionContext`]: the one kernel
/// run executes on the context's kernel with its reliability policy. The
/// virtual graph `gv` is *not* the context's session graph — it is built
/// per merge over the active parts — so the run goes through
/// [`ExecutionContext::run_phase_on`].
///
/// # Errors
///
/// Propagates kernel errors.
///
/// # Panics
///
/// Panics if `colors.len() != gv.vertex_count()`.
pub fn symmetry_break_ctx(
    ctx: &mut ExecutionContext<'_>,
    gv: &Graph,
    colors: &[u32],
) -> Result<SymmetryOutcome, SimError> {
    assert_eq!(colors.len(), gv.vertex_count());
    let out = ctx.run_phase_on(gv, symmetry_programs(gv, colors))?;
    extract_outcome(gv, out.programs, out.metrics.rounds)
}

/// The per-vertex Lemma 5.3 programs for a properly colored `gv`.
fn symmetry_programs(gv: &Graph, colors: &[u32]) -> Vec<SymmetryBreak> {
    gv.vertices()
        .map(|v| SymmetryBreak::new(v, colors[v.index()]))
        .collect()
}

/// Reads stars and chains out of the quiesced programs.
fn extract_outcome(
    gv: &Graph,
    programs: Vec<SymmetryBreak>,
    rounds: usize,
) -> Result<SymmetryOutcome, SimError> {
    let ps = &programs;

    let mut stars = Vec::new();
    for v in gv.vertices() {
        let p = &ps[v.index()];
        if !p.joiners().is_empty() {
            stars.push((v, p.joiners().to_vec()));
        }
    }

    // Chain links among unconsumed nodes: v -> pointer(v) when the pointer
    // is unconsumed and v is its unique unconsumed child.
    let remaining: Vec<VertexId> = gv
        .vertices()
        .filter(|v| !ps[v.index()].consumed())
        .collect();
    let mut next: HashMap<VertexId, VertexId> = HashMap::new();
    let mut has_incoming: HashMap<VertexId, usize> = HashMap::new();
    for &v in &remaining {
        let p = &ps[v.index()];
        if let Some(ptr) = p.pointer() {
            if !ps[ptr.index()].consumed() {
                let unconsumed_children = ps[ptr.index()]
                    .children()
                    .iter()
                    .filter(|c| !ps[c.index()].consumed())
                    .count();
                if unconsumed_children == 1 {
                    next.insert(v, ptr);
                    *has_incoming.entry(ptr).or_insert(0) += 1;
                }
            }
        }
    }
    let mut chains = Vec::new();
    for &v in &remaining {
        if has_incoming.contains_key(&v) {
            continue; // not a chain tail
        }
        let mut chain = vec![v];
        let mut cur = v;
        while let Some(&nxt) = next.get(&cur) {
            chain.push(nxt);
            cur = nxt;
        }
        chains.push(chain);
    }
    Ok(SymmetryOutcome {
        stars,
        chains,
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use planar_lib::gen;

    /// Greedy proper coloring by ascending id.
    fn greedy_coloring(g: &Graph) -> Vec<u32> {
        let mut colors = vec![u32::MAX; g.vertex_count()];
        for v in g.vertices() {
            let used: Vec<u32> = g
                .neighbors(v)
                .iter()
                .filter(|w| w.index() < v.index())
                .map(|w| colors[w.index()])
                .collect();
            colors[v.index()] = (0..).find(|c| !used.contains(c)).unwrap();
        }
        colors
    }

    fn check_outcome(g: &Graph, out: &SymmetryOutcome, colors: &[u32]) {
        // Constant rounds.
        assert_eq!(out.rounds, 5);
        // Stars are induced, of size >= 2, and disjoint from each other and
        // from chains.
        let mut seen = std::collections::HashSet::new();
        for (center, leaves) in &out.stars {
            assert!(!leaves.is_empty());
            assert!(seen.insert(*center), "star center reused");
            for (i, &l) in leaves.iter().enumerate() {
                assert!(seen.insert(l), "star leaf reused");
                assert!(g.has_edge(*center, l), "leaf must touch center");
                for &l2 in &leaves[i + 1..] {
                    assert!(!g.has_edge(l, l2), "star must be induced");
                }
            }
        }
        // Chains are color-monotone paths in g covering everything else.
        for chain in &out.chains {
            for w in chain.windows(2) {
                assert!(g.has_edge(w[0], w[1]), "chain steps must be edges");
                assert!(
                    colors[w[1].index()] < colors[w[0].index()],
                    "chains must be color-monotone"
                );
            }
            for &v in chain {
                assert!(seen.insert(v), "chain node reused");
            }
        }
        assert_eq!(seen.len(), g.vertex_count(), "every node classified");
    }

    #[test]
    fn monotone_path_yields_one_star_and_one_chain() {
        let n = 8;
        let g = gen::path(n);
        let colors: Vec<u32> = (0..n as u32).collect();
        let out = symmetry_break(&g, &colors, &SimConfig::default()).unwrap();
        check_outcome(&g, &out, &colors);
        assert_eq!(out.stars.len(), 1);
        assert_eq!(out.stars[0], (VertexId(6), vec![VertexId(7)]));
        assert_eq!(out.chains.len(), 1);
        assert_eq!(out.chains[0].len(), n - 2);
    }

    #[test]
    fn star_graph_consumed_entirely() {
        let g = gen::star(6);
        let colors = vec![0, 1, 1, 1, 1, 1];
        let out = symmetry_break(&g, &colors, &SimConfig::default()).unwrap();
        check_outcome(&g, &out, &colors);
        assert_eq!(out.stars.len(), 1);
        assert_eq!(out.stars[0].1.len(), 5);
        assert!(out.chains.is_empty());
    }

    #[test]
    fn triangle_breaks_ties_by_id() {
        let g = gen::cycle(3);
        let colors = vec![0, 1, 2];
        let out = symmetry_break(&g, &colors, &SimConfig::default()).unwrap();
        check_outcome(&g, &out, &colors);
        // 1 and 2 both point at 0 and are adjacent leaves: only 1 joins.
        assert_eq!(out.stars, vec![(VertexId(0), vec![VertexId(1)])]);
        assert_eq!(out.chains, vec![vec![VertexId(2)]]);
    }

    #[test]
    fn random_outerplanar_instances() {
        for seed in 0..10 {
            let g = gen::random_outerplanar(20, seed);
            let colors = greedy_coloring(&g);
            let out = symmetry_break(&g, &colors, &SimConfig::default()).unwrap();
            check_outcome(&g, &out, &colors);
        }
    }

    #[test]
    fn sparse_outerplanar_makes_progress() {
        // Over many instances, a decent fraction of nodes should end up in
        // stars or 2-chains (i.e. merge) — the progress the merge reduction
        // relies on.
        let mut merged = 0usize;
        let mut total = 0usize;
        for seed in 0..10 {
            let g = gen::sparse_outerplanar(30, 8, seed);
            let colors = greedy_coloring(&g);
            let out = symmetry_break(&g, &colors, &SimConfig::default()).unwrap();
            check_outcome(&g, &out, &colors);
            merged += out.stars.iter().map(|(_, l)| l.len() + 1).sum::<usize>();
            merged += out
                .chains
                .iter()
                .filter(|c| c.len() == 2)
                .map(|_| 2)
                .sum::<usize>();
            total += 30;
        }
        assert!(
            merged * 5 >= total,
            "at least 20% of nodes should merge, got {merged}/{total}"
        );
    }

    #[test]
    fn empty_and_single_node_graphs() {
        let g = Graph::new(1);
        let out = symmetry_break(&g, &[0], &SimConfig::default()).unwrap();
        assert!(out.stars.is_empty());
        assert_eq!(out.chains, vec![vec![VertexId(0)]]);
    }
}
