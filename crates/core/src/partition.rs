//! The partitioning step of Section 4: split a BFS subtree `T_s` into the
//! coordinator path `P_0 = s..v` (where `v` is the 2/3-splitter found by a
//! distributed centroid walk) and the hanging subtree parts `P_1..P_k`.

use std::collections::HashMap;

use congest_sim::protocols::{CentroidWalk, Downcast, ReliableConfig};
use congest_sim::routing::{schedule, Transfer};
use congest_sim::{Metrics, SimConfig};
use planar_graph::{Graph, VertexId};

use crate::error::EmbedError;
use crate::resilience::run_phase;
use crate::tree::GlobalTree;

/// A subproblem of the recursion: a full BFS subtree.
#[derive(Clone, Debug)]
pub struct SubProblem {
    /// Root of the subtree.
    pub root: VertexId,
    /// All vertices of the subtree.
    pub members: Vec<VertexId>,
}

/// The result of partitioning one subtree.
#[derive(Clone, Debug)]
pub struct Partition {
    /// The trivial path part `P_0`, ordered from the subtree root `s` to the
    /// splitter `v`.
    pub p0: Vec<VertexId>,
    /// The hanging parts `P_1..P_k`, each a full subtree.
    pub parts: Vec<SubProblem>,
    /// Kernel cost of computing the partition.
    pub metrics: Metrics,
}

/// Runs the distributed partition of the subtree rooted at `root`.
///
/// Cost: a centroid walk (`O(depth)` rounds, measured by the kernel), one
/// round of part-root notification (charged via routed transfers) and a
/// label downcast into each hanging subtree (`O(depth)` rounds, measured).
///
/// # Errors
///
/// Propagates kernel/routing errors (which indicate internal bugs, not bad
/// inputs).
pub fn partition_subtree(
    g: &Graph,
    tree: &GlobalTree,
    root: VertexId,
    cfg: &SimConfig,
) -> Result<Partition, EmbedError> {
    partition_subtree_with(g, tree, root, cfg, None)
}

/// [`partition_subtree`] with opt-in reliable delivery for the two kernel
/// protocols (centroid walk, label downcast); the routed notification is
/// charged analytically and needs no protection.
///
/// # Errors
///
/// As [`partition_subtree`].
pub fn partition_subtree_with(
    g: &Graph,
    tree: &GlobalTree,
    root: VertexId,
    cfg: &SimConfig,
    rel: Option<&ReliableConfig>,
) -> Result<Partition, EmbedError> {
    let members = tree.subtree_members(root);
    let total = tree.subtree_size[root.index()];
    debug_assert_eq!(members.len() as u64, total);
    let mut metrics = Metrics::new();

    // 1. Centroid walk (Lemma 4.2's splitter), message-level.
    let in_subtree: HashMap<VertexId, ()> = members.iter().map(|&v| (v, ())).collect();
    let walkers: Vec<CentroidWalk> = g
        .vertices()
        .map(|v| {
            if in_subtree.contains_key(&v) {
                let child_sizes: HashMap<VertexId, u64> = tree.children[v.index()]
                    .iter()
                    .map(|&c| (c, tree.subtree_size[c.index()]))
                    .collect();
                CentroidWalk::new(child_sizes, total, v == root)
            } else {
                CentroidWalk::inactive()
            }
        })
        .collect();
    let out = run_phase(g, walkers, cfg, rel)?;
    metrics.add(out.metrics);
    let centroid = members
        .iter()
        .copied()
        .find(|v| out.programs[v.index()].is_centroid())
        .ok_or_else(|| EmbedError::Internal("centroid walk did not terminate".into()))?;

    // P_0 = path from s down to the splitter.
    let mut p0 = tree.path_to_ancestor(centroid, root);
    p0.reverse();
    let on_p0: HashMap<VertexId, ()> = p0.iter().map(|&v| (v, ())).collect();

    // 2. Part roots: children of P_0 vertices that are not on P_0 themselves.
    //    One charged round: each P_0 vertex tells those children.
    let mut part_roots: Vec<VertexId> = Vec::new();
    let mut notify: Vec<Transfer> = Vec::new();
    for &p in &p0 {
        for &c in &tree.children[p.index()] {
            if !on_p0.contains_key(&c) {
                part_roots.push(c);
                notify.push(Transfer::new(vec![p, c], 1));
            }
        }
    }
    metrics.add(schedule(g, &notify, cfg.budget_words)?);

    // 3. Part-label downcast inside every hanging subtree (all in parallel).
    let root_label: HashMap<VertexId, u32> = part_roots.iter().map(|&r| (r, r.0)).collect();
    let programs: Vec<Downcast> = g
        .vertices()
        .map(|v| {
            if in_subtree.contains_key(&v) && !on_p0.contains_key(&v) {
                Downcast::new(&tree.children[v.index()], root_label.get(&v).copied())
            } else {
                Downcast::new(&[], None)
            }
        })
        .collect();
    let out = run_phase(g, programs, cfg, rel)?;
    metrics.add(out.metrics);

    let parts: Vec<SubProblem> = part_roots
        .into_iter()
        .map(|r| SubProblem {
            root: r,
            members: tree.subtree_members(r),
        })
        .collect();
    // All rounds above belong to the partition phase.
    metrics.phase_rounds.partition = metrics.rounds;
    Ok(Partition { p0, parts, metrics })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::run_setup;
    use planar_lib::gen;

    fn setup_tree(g: &Graph) -> GlobalTree {
        run_setup(g, &SimConfig::default()).unwrap().0.tree
    }

    #[test]
    fn partition_respects_lemma_4_2() {
        let g = gen::grid(6, 6);
        let tree = setup_tree(&g);
        let p = partition_subtree(&g, &tree, tree.root, &SimConfig::default()).unwrap();
        let n = g.vertex_count();
        // P_0 non-empty, starts at the root.
        assert_eq!(p.p0[0], tree.root);
        // Every hanging part has size <= 2n/3 (Lemma 4.2).
        for part in &p.parts {
            assert!(3 * part.members.len() <= 2 * n);
        }
        // Parts + P_0 partition the subtree.
        let covered: usize = p.p0.len() + p.parts.iter().map(|q| q.members.len()).sum::<usize>();
        assert_eq!(covered, n);
        // Part diameter (tree depth within part) < depth(T_s) (Lemma 4.2).
        let depth_ts = tree.tree_depth();
        for part in &p.parts {
            assert!(tree.subtree_depth(part.root) < depth_ts.max(1));
        }
    }

    #[test]
    fn partition_of_path_graph() {
        let g = gen::path(9); // root will be vertex 8
        let tree = setup_tree(&g);
        let p = partition_subtree(&g, &tree, tree.root, &SimConfig::default()).unwrap();
        // On a path rooted at an end, P_0 runs from 8 down to the first
        // splitter (vertex 6: below it hang 6 vertices <= 2*9/3 = 6, above 2).
        assert_eq!(p.p0, vec![VertexId(8), VertexId(7), VertexId(6)]);
        assert_eq!(p.parts.len(), 1);
        assert_eq!(p.parts[0].root, VertexId(5));
        assert_eq!(p.parts[0].members.len(), 6);
    }

    #[test]
    fn partition_of_star_is_center_plus_leaves() {
        let g = gen::star(7); // center 0, leaves 1..6; root = 6 (max id)
        let tree = setup_tree(&g);
        let p = partition_subtree(&g, &tree, tree.root, &SimConfig::default()).unwrap();
        // The walk goes 6 -> 0 (subtree below 0 has 6 > 2*7/3 = 4.67).
        assert_eq!(p.p0, vec![VertexId(6), VertexId(0)]);
        assert_eq!(p.parts.len(), 5);
        for part in &p.parts {
            assert_eq!(part.members.len(), 1);
        }
    }

    #[test]
    fn partition_cost_is_linear_in_depth() {
        let g = gen::path(64);
        let tree = setup_tree(&g);
        let p = partition_subtree(&g, &tree, tree.root, &SimConfig::default()).unwrap();
        // Centroid walk + notify + downcast: all O(depth) = O(n) on a path.
        assert!(p.metrics.rounds <= 3 * 64, "rounds = {}", p.metrics.rounds);
    }

    #[test]
    fn partition_single_vertex_subtree() {
        let g = gen::path(4);
        let tree = setup_tree(&g);
        // Leaf subtree (vertex 0): P_0 = [0], no parts.
        let p = partition_subtree(&g, &tree, VertexId(0), &SimConfig::default()).unwrap();
        assert_eq!(p.p0, vec![VertexId(0)]);
        assert!(p.parts.is_empty());
    }
}
