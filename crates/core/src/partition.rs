//! The partitioning step of Section 4: split a BFS subtree `T_s` into the
//! coordinator path `P_0 = s..v` (where `v` is the 2/3-splitter found by a
//! distributed centroid walk) and the hanging subtree parts `P_1..P_k`.
//!
//! Two entry points compute the *same* partition at the same per-subtree
//! cost: [`partition_subtree_ctx`] runs one subtree per kernel invocation
//! (the sequential scheduler's path), while [`partition_level`] batches
//! every same-level subtree of the recursion into one kernel invocation
//! over vertex-disjoint [`Instance`]s — per-instance metrics are
//! bit-identical to the one-at-a-time runs, and the kernel enforces that
//! sibling subtrees never exchange a message.

use std::collections::HashMap;

use congest_sim::protocols::{CentroidWalk, Downcast};
use congest_sim::routing::{schedule, Transfer};
use congest_sim::{Instance, Metrics, SimConfig};
use planar_graph::{Graph, VertexId};

use crate::error::EmbedError;
use crate::exec::ExecutionContext;
use crate::tree::GlobalTree;

/// A subproblem of the recursion: a full BFS subtree.
#[derive(Clone, Debug)]
pub struct SubProblem {
    /// Root of the subtree.
    pub root: VertexId,
    /// All vertices of the subtree.
    pub members: Vec<VertexId>,
}

/// The result of partitioning one subtree.
#[derive(Clone, Debug)]
pub struct Partition {
    /// The trivial path part `P_0`, ordered from the subtree root `s` to the
    /// splitter `v`.
    pub p0: Vec<VertexId>,
    /// The hanging parts `P_1..P_k`, each a full subtree.
    pub parts: Vec<SubProblem>,
    /// Kernel cost of computing the partition.
    pub metrics: Metrics,
}

/// Runs the distributed partition of the subtree rooted at `root`.
///
/// Cost: a centroid walk (`O(depth)` rounds, measured by the kernel), one
/// round of part-root notification (charged via routed transfers) and a
/// label downcast into each hanging subtree (`O(depth)` rounds, measured).
///
/// # Errors
///
/// Propagates kernel/routing errors (which indicate internal bugs, not bad
/// inputs).
pub fn partition_subtree(
    g: &Graph,
    tree: &GlobalTree,
    root: VertexId,
    cfg: &SimConfig,
) -> Result<Partition, EmbedError> {
    partition_subtree_ctx(&mut ExecutionContext::with_sim(g, cfg), tree, root)
}

/// [`partition_subtree`] against a full [`ExecutionContext`]: the two
/// kernel protocols (centroid walk, label downcast) run on the context's
/// kernel with its reliability policy; the routed notification is charged
/// analytically and needs no protection.
///
/// # Errors
///
/// As [`partition_subtree`].
pub fn partition_subtree_ctx(
    ctx: &mut ExecutionContext<'_>,
    tree: &GlobalTree,
    root: VertexId,
) -> Result<Partition, EmbedError> {
    let g = ctx.graph();
    let members = tree.subtree_members(root);
    let total = tree.subtree_size[root.index()];
    debug_assert_eq!(members.len() as u64, total);
    let mut metrics = Metrics::new();

    // 1. Centroid walk (Lemma 4.2's splitter), message-level. Nodes outside
    //    the subtree participate as completely inert fillers, so this
    //    full-graph run costs exactly what an instance-scoped run over the
    //    members costs.
    let in_subtree: HashMap<VertexId, ()> = members.iter().map(|&v| (v, ())).collect();
    let walkers: Vec<CentroidWalk> = g
        .vertices()
        .map(|v| {
            if in_subtree.contains_key(&v) {
                centroid_walker(tree, v, total, root)
            } else {
                CentroidWalk::inactive()
            }
        })
        .collect();
    let out = ctx.run_phase(walkers)?;
    metrics.add(out.metrics);
    let centroid = members
        .iter()
        .copied()
        .find(|v| out.programs[v.index()].is_centroid())
        .ok_or_else(|| EmbedError::Internal("centroid walk did not terminate".into()))?;

    let spine = PartitionSpine::from_centroid(g, tree, root, centroid, ctx.sim(), &mut metrics)?;

    // 3. Part-label downcast inside every hanging subtree (all in parallel).
    let programs: Vec<Downcast> = g
        .vertices()
        .map(|v| {
            if in_subtree.contains_key(&v) {
                spine.downcaster(tree, v)
            } else {
                Downcast::new(&[], None)
            }
        })
        .collect();
    let out = ctx.run_phase(programs)?;
    metrics.add(out.metrics);

    Ok(spine.finish(tree, metrics))
}

/// Partitions every subtree in `roots` — the same-level subproblems of the
/// level-synchronous scheduler — in **two batched kernel invocations**
/// (one for all centroid walks, one for all label downcasts) instead of
/// two per subtree.
///
/// The subtrees must be vertex-disjoint (same-level subproblems of the
/// recursion always are); each becomes one [`Instance`] whose members run
/// exactly the programs the one-at-a-time path gives them, so the returned
/// partitions — splitter, `P_0`, parts, *and metrics* — are bit-identical
/// to calling [`partition_subtree_ctx`] once per root, and the kernel
/// rejects any message between sibling subtrees
/// ([`congest_sim::SimError::CrossInstanceSend`]).
///
/// # Errors
///
/// As [`partition_subtree`].
pub fn partition_level(
    ctx: &mut ExecutionContext<'_>,
    tree: &GlobalTree,
    roots: &[VertexId],
) -> Result<Vec<Partition>, EmbedError> {
    if roots.is_empty() {
        return Ok(Vec::new());
    }
    let g = ctx.graph();
    let memberships: Vec<Vec<VertexId>> = roots.iter().map(|&r| tree.subtree_members(r)).collect();

    // 1. All centroid walks, one shared round lattice.
    let walk_instances: Vec<Instance<CentroidWalk>> = roots
        .iter()
        .zip(&memberships)
        .map(|(&root, members)| {
            let total = tree.subtree_size[root.index()];
            debug_assert_eq!(members.len() as u64, total);
            Instance::new(
                members
                    .iter()
                    .map(|&v| (v, centroid_walker(tree, v, total, root)))
                    .collect(),
            )
        })
        .collect();
    let walk_out = ctx.run_phase_many(walk_instances)?;

    // 2. Per subtree: splitter, P_0, part roots, charged notification.
    let mut spines = Vec::with_capacity(roots.len());
    let mut metrics: Vec<Metrics> = Vec::with_capacity(roots.len());
    for (i, (&root, members)) in roots.iter().zip(&memberships).enumerate() {
        let inst = &walk_out.instances[i];
        let mut m = Metrics::new();
        m.add(inst.metrics);
        let centroid = members
            .iter()
            .copied()
            .find(|&v| inst.program(v).is_some_and(CentroidWalk::is_centroid))
            .ok_or_else(|| EmbedError::Internal("centroid walk did not terminate".into()))?;
        spines.push(PartitionSpine::from_centroid(
            g,
            tree,
            root,
            centroid,
            ctx.sim(),
            &mut m,
        )?);
        metrics.push(m);
    }

    // 3. All part-label downcasts, one shared round lattice.
    let down_instances: Vec<Instance<Downcast>> = spines
        .iter()
        .zip(&memberships)
        .map(|(spine, members)| {
            Instance::new(
                members
                    .iter()
                    .map(|&v| (v, spine.downcaster(tree, v)))
                    .collect(),
            )
        })
        .collect();
    let down_out = ctx.run_phase_many(down_instances)?;

    Ok(spines
        .into_iter()
        .zip(metrics)
        .zip(&down_out.instances)
        .map(|((spine, mut m), inst)| {
            m.add(inst.metrics);
            spine.finish(tree, m)
        })
        .collect())
}

/// The subtree's centroid-walk program: every member knows its tree
/// children's subtree sizes and the subtree total.
fn centroid_walker(tree: &GlobalTree, v: VertexId, total: u64, root: VertexId) -> CentroidWalk {
    let child_sizes: HashMap<VertexId, u64> = tree.children[v.index()]
        .iter()
        .map(|&c| (c, tree.subtree_size[c.index()]))
        .collect();
    CentroidWalk::new(child_sizes, total, v == root)
}

/// The host-side skeleton of one partition between the centroid walk and
/// the label downcast: `P_0`, the part roots, and the downcast labels.
/// Shared verbatim by the sequential and the batched path so both derive
/// the identical partition from the identical walk outcome.
struct PartitionSpine {
    p0: Vec<VertexId>,
    on_p0: HashMap<VertexId, ()>,
    part_roots: Vec<VertexId>,
    root_label: HashMap<VertexId, u32>,
}

impl PartitionSpine {
    /// Derives `P_0` and the part roots from the walk's splitter and
    /// charges the one-round part-root notification to `metrics`.
    fn from_centroid(
        g: &Graph,
        tree: &GlobalTree,
        root: VertexId,
        centroid: VertexId,
        cfg: &SimConfig,
        metrics: &mut Metrics,
    ) -> Result<Self, EmbedError> {
        // P_0 = path from s down to the splitter.
        let mut p0 = tree.path_to_ancestor(centroid, root);
        p0.reverse();
        let on_p0: HashMap<VertexId, ()> = p0.iter().map(|&v| (v, ())).collect();

        // Part roots: children of P_0 vertices that are not on P_0
        // themselves. One charged round: each P_0 vertex tells those
        // children.
        let mut part_roots: Vec<VertexId> = Vec::new();
        let mut notify: Vec<Transfer> = Vec::new();
        for &p in &p0 {
            for &c in &tree.children[p.index()] {
                if !on_p0.contains_key(&c) {
                    part_roots.push(c);
                    notify.push(Transfer::new(vec![p, c], 1));
                }
            }
        }
        metrics.add(schedule(g, &notify, cfg.budget_words)?);

        let root_label: HashMap<VertexId, u32> = part_roots.iter().map(|&r| (r, r.0)).collect();
        Ok(PartitionSpine {
            p0,
            on_p0,
            part_roots,
            root_label,
        })
    }

    /// The label-downcast program a subtree member runs: `P_0` vertices are
    /// inert, part roots inject their own id, everyone else relays to its
    /// tree children.
    fn downcaster(&self, tree: &GlobalTree, v: VertexId) -> Downcast {
        if self.on_p0.contains_key(&v) {
            Downcast::new(&[], None)
        } else {
            Downcast::new(&tree.children[v.index()], self.root_label.get(&v).copied())
        }
    }

    /// Materializes the hanging parts and stamps the phase attribution.
    fn finish(self, tree: &GlobalTree, mut metrics: Metrics) -> Partition {
        let parts: Vec<SubProblem> = self
            .part_roots
            .into_iter()
            .map(|r| SubProblem {
                root: r,
                members: tree.subtree_members(r),
            })
            .collect();
        // All rounds above belong to the partition phase.
        metrics.phase_rounds.partition = metrics.rounds;
        Partition {
            p0: self.p0,
            parts,
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::run_setup;
    use planar_lib::gen;

    fn setup_tree(g: &Graph) -> GlobalTree {
        run_setup(g, &SimConfig::default()).unwrap().0.tree
    }

    #[test]
    fn partition_respects_lemma_4_2() {
        let g = gen::grid(6, 6);
        let tree = setup_tree(&g);
        let p = partition_subtree(&g, &tree, tree.root, &SimConfig::default()).unwrap();
        let n = g.vertex_count();
        // P_0 non-empty, starts at the root.
        assert_eq!(p.p0[0], tree.root);
        // Every hanging part has size <= 2n/3 (Lemma 4.2).
        for part in &p.parts {
            assert!(3 * part.members.len() <= 2 * n);
        }
        // Parts + P_0 partition the subtree.
        let covered: usize = p.p0.len() + p.parts.iter().map(|q| q.members.len()).sum::<usize>();
        assert_eq!(covered, n);
        // Part diameter (tree depth within part) < depth(T_s) (Lemma 4.2).
        let depth_ts = tree.tree_depth();
        for part in &p.parts {
            assert!(tree.subtree_depth(part.root) < depth_ts.max(1));
        }
    }

    #[test]
    fn partition_of_path_graph() {
        let g = gen::path(9); // root will be vertex 8
        let tree = setup_tree(&g);
        let p = partition_subtree(&g, &tree, tree.root, &SimConfig::default()).unwrap();
        // On a path rooted at an end, P_0 runs from 8 down to the first
        // splitter (vertex 6: below it hang 6 vertices <= 2*9/3 = 6, above 2).
        assert_eq!(p.p0, vec![VertexId(8), VertexId(7), VertexId(6)]);
        assert_eq!(p.parts.len(), 1);
        assert_eq!(p.parts[0].root, VertexId(5));
        assert_eq!(p.parts[0].members.len(), 6);
    }

    #[test]
    fn partition_of_star_is_center_plus_leaves() {
        let g = gen::star(7); // center 0, leaves 1..6; root = 6 (max id)
        let tree = setup_tree(&g);
        let p = partition_subtree(&g, &tree, tree.root, &SimConfig::default()).unwrap();
        // The walk goes 6 -> 0 (subtree below 0 has 6 > 2*7/3 = 4.67).
        assert_eq!(p.p0, vec![VertexId(6), VertexId(0)]);
        assert_eq!(p.parts.len(), 5);
        for part in &p.parts {
            assert_eq!(part.members.len(), 1);
        }
    }

    #[test]
    fn partition_cost_is_linear_in_depth() {
        let g = gen::path(64);
        let tree = setup_tree(&g);
        let p = partition_subtree(&g, &tree, tree.root, &SimConfig::default()).unwrap();
        // Centroid walk + notify + downcast: all O(depth) = O(n) on a path.
        assert!(p.metrics.rounds <= 3 * 64, "rounds = {}", p.metrics.rounds);
    }

    #[test]
    fn partition_single_vertex_subtree() {
        let g = gen::path(4);
        let tree = setup_tree(&g);
        // Leaf subtree (vertex 0): P_0 = [0], no parts.
        let p = partition_subtree(&g, &tree, VertexId(0), &SimConfig::default()).unwrap();
        assert_eq!(p.p0, vec![VertexId(0)]);
        assert!(p.parts.is_empty());
    }

    #[test]
    fn batched_level_matches_one_at_a_time() {
        let g = gen::grid(6, 6);
        let tree = setup_tree(&g);
        let cfg = SimConfig::default();
        // Partition the root, then its hanging parts both ways.
        let top = partition_subtree(&g, &tree, tree.root, &cfg).unwrap();
        let roots: Vec<VertexId> = top
            .parts
            .iter()
            .filter(|p| p.members.len() > 1)
            .map(|p| p.root)
            .collect();
        assert!(roots.len() > 1, "grid should split into several parts");
        let mut ctx = ExecutionContext::with_sim(&g, &cfg);
        let batched = partition_level(&mut ctx, &tree, &roots).unwrap();
        for (i, &root) in roots.iter().enumerate() {
            let solo = partition_subtree(&g, &tree, root, &cfg).unwrap();
            assert_eq!(batched[i].p0, solo.p0);
            assert_eq!(batched[i].metrics, solo.metrics);
            let b_parts: Vec<_> = batched[i].parts.iter().map(|p| p.root).collect();
            let s_parts: Vec<_> = solo.parts.iter().map(|p| p.root).collect();
            assert_eq!(b_parts, s_parts);
        }
    }
}
