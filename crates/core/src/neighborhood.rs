//! O(1)-round neighborhood learning on everywhere-sparse graphs — the
//! substitute for Section 7.1.3 of the paper's (unpublished) full version.
//!
//! The paper's routine lets every vertex of an everywhere-sparse graph
//! learn the subgraph induced by its neighborhood in O(1) rounds, using
//! Slepian–Wolf style distributed source coding. Our substitute preserves
//! the interface and the O(1) round count by replacing the coding-theoretic
//! compression with an *orientation-bounded direct exchange*: given an
//! orientation of the edges with out-degree at most `k` (planar graphs have
//! one with `k <= 5`, outerplanar with `k <= 2`), every vertex broadcasts
//! its out-list — `O(k)` words — to all neighbors in `ceil((k+1)/B)` rounds.
//! Every edge `{u, w}` inside a neighborhood is then known to the observer
//! through whichever endpoint out-points along it.
//!
//! The orientation itself is obtained by degeneracy peeling — centralized
//! ([`degeneracy_orientation`]) for use as a precomputed input, or
//! distributed ([`peel_orientation`], `O(log n)` measured kernel rounds,
//! the honest cost without the coding machinery).

use std::collections::{HashMap, HashSet};

use congest_sim::{run, Metrics, NodeCtx, NodeProgram, SimConfig, SimError, Words};
use planar_graph::{EdgeId, Graph, VertexId};

/// An edge orientation given as per-vertex out-neighbor lists.
#[derive(Clone, Debug)]
pub struct Orientation {
    out: Vec<Vec<VertexId>>,
}

impl Orientation {
    /// The out-neighbors of `v`.
    pub fn out(&self, v: VertexId) -> &[VertexId] {
        &self.out[v.index()]
    }

    /// The maximum out-degree.
    pub fn max_outdegree(&self) -> usize {
        self.out.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Checks that every edge of `g` is oriented exactly once.
    pub fn covers(&self, g: &Graph) -> bool {
        let mut seen = HashSet::new();
        for v in g.vertices() {
            for &w in self.out(v) {
                if !g.has_edge(v, w) || !seen.insert(EdgeId::new(v, w)) {
                    return false;
                }
            }
        }
        seen.len() == g.edge_count()
    }
}

/// Computes a degeneracy orientation centrally: repeatedly peel a minimum-
/// degree vertex and orient its remaining edges outward. For a `d`-degenerate
/// graph the out-degree is at most `d` (planar: 5, outerplanar: 2, tree: 1).
pub fn degeneracy_orientation(g: &Graph) -> Orientation {
    let n = g.vertex_count();
    let mut degree: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
    let mut removed = vec![false; n];
    let mut out = vec![Vec::new(); n];
    // Bucket queue over degrees.
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); n.max(1)];
    for v in g.vertices() {
        buckets[degree[v.index()]].push(v);
    }
    let mut processed = 0;
    let mut cur = 0;
    while processed < n {
        while cur < buckets.len() && buckets[cur].is_empty() {
            cur += 1;
        }
        if cur >= buckets.len() {
            break;
        }
        let v = buckets[cur].pop().expect("bucket non-empty");
        if removed[v.index()] || degree[v.index()] != cur {
            continue; // stale entry
        }
        removed[v.index()] = true;
        processed += 1;
        for &w in g.neighbors(v) {
            if !removed[w.index()] {
                out[v.index()].push(w);
                degree[w.index()] -= 1;
                buckets[degree[w.index()]].push(w);
            }
        }
        cur = cur.saturating_sub(1);
    }
    Orientation { out }
}

/// Message of the distributed peeling protocol.
#[derive(Clone, Debug)]
enum PeelMsg {
    /// "I peel this iteration; orient our edge out of me."
    Peel,
    /// Round keep-alive.
    Tick,
}

impl Words for PeelMsg {
    fn words(&self) -> usize {
        1
    }
}

/// Distributed peeling program: in each iteration, every vertex whose
/// residual degree is at most `threshold` peels, orienting its residual
/// edges outward (ties between simultaneous peelers broken toward the
/// smaller id). For planar graphs with `threshold = 5` this takes
/// `O(log n)` iterations.
#[derive(Clone, Debug)]
struct PeelProgram {
    id: VertexId,
    threshold: usize,
    alive_neighbors: Vec<VertexId>,
    peeled: bool,
    out: Vec<VertexId>,
}

impl PeelProgram {
    fn wants_to_peel(&self) -> bool {
        !self.peeled && self.alive_neighbors.len() <= self.threshold
    }

    fn peel_now(&mut self) -> Vec<(VertexId, PeelMsg)> {
        self.peeled = true;
        self.out = self.alive_neighbors.clone();
        self.alive_neighbors
            .iter()
            .map(|&w| (w, PeelMsg::Peel))
            .collect()
    }
}

impl NodeProgram for PeelProgram {
    type Msg = PeelMsg;

    fn init(&mut self, _ctx: &NodeCtx<'_>) -> Vec<(VertexId, PeelMsg)> {
        if self.wants_to_peel() {
            self.peel_now()
        } else {
            self.alive_neighbors
                .iter()
                .map(|&w| (w, PeelMsg::Tick))
                .collect()
        }
    }

    fn on_round(
        &mut self,
        _ctx: &NodeCtx<'_>,
        inbox: &[(VertexId, PeelMsg)],
    ) -> Vec<(VertexId, PeelMsg)> {
        let mut changed = false;
        for (from, msg) in inbox {
            if matches!(msg, PeelMsg::Peel) {
                self.alive_neighbors.retain(|&w| w != *from);
                // Simultaneous peels: the edge was claimed by both ends;
                // keep it only at the smaller id.
                if self.peeled && self.id > *from {
                    self.out.retain(|&w| w != *from);
                }
                changed = true;
            }
        }
        let _ = changed;
        if self.peeled {
            return Vec::new();
        }
        if self.wants_to_peel() {
            self.peel_now()
        } else {
            // Keep the synchronous iterations ticking.
            self.alive_neighbors
                .iter()
                .map(|&w| (w, PeelMsg::Tick))
                .collect()
        }
    }
}

/// Computes a `threshold`-degeneracy orientation distributedly by parallel
/// peeling; returns the orientation and the measured kernel cost.
///
/// # Errors
///
/// Returns the kernel error if the graph is not `threshold`-degenerate
/// (the protocol then never quiesces and hits the round cap).
pub fn peel_orientation(
    g: &Graph,
    threshold: usize,
    cfg: &SimConfig,
) -> Result<(Orientation, Metrics), SimError> {
    let programs: Vec<PeelProgram> = g
        .vertices()
        .map(|v| PeelProgram {
            id: v,
            threshold,
            alive_neighbors: g.neighbors(v).to_vec(),
            peeled: false,
            out: Vec::new(),
        })
        .collect();
    let out = run(g, programs, cfg)?;
    let orientation = Orientation {
        out: out.programs.into_iter().map(|p| p.out).collect(),
    };
    Ok((orientation, out.metrics))
}

/// The neighborhood-learning program: one broadcast of the out-list.
#[derive(Clone, Debug)]
struct LearnProgram {
    out: Vec<VertexId>,
    /// Learned induced-neighborhood edges.
    learned: Vec<EdgeId>,
    neighbors: Vec<VertexId>,
}

impl NodeProgram for LearnProgram {
    type Msg = Vec<VertexId>;

    fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, Vec<VertexId>)> {
        self.neighbors = ctx.neighbors.to_vec();
        ctx.neighbors
            .iter()
            .map(|&w| (w, self.out.clone()))
            .collect()
    }

    fn on_round(
        &mut self,
        ctx: &NodeCtx<'_>,
        inbox: &[(VertexId, Vec<VertexId>)],
    ) -> Vec<(VertexId, Vec<VertexId>)> {
        let nbrs: HashSet<VertexId> = ctx.neighbors.iter().copied().collect();
        for (from, out_list) in inbox {
            for &w in out_list {
                // {from, w} is an edge; it lies inside my neighborhood iff
                // both endpoints are my neighbors.
                if nbrs.contains(from) && nbrs.contains(&w) {
                    self.learned.push(EdgeId::new(*from, w));
                }
            }
        }
        self.learned.sort();
        self.learned.dedup();
        Vec::new()
    }
}

/// Every vertex learns the subgraph induced by its (open) neighborhood.
///
/// Returns, per vertex, the induced edges among its neighbors, plus the
/// measured cost: **one** kernel round when `orientation.max_outdegree() + 1
/// <= budget` (the everywhere-sparse case the paper needs).
///
/// # Errors
///
/// Propagates kernel errors — in particular a budget violation if the
/// orientation's out-degree is too large for the configured budget.
pub fn learn_neighborhoods(
    g: &Graph,
    orientation: &Orientation,
    cfg: &SimConfig,
) -> Result<(Vec<Vec<EdgeId>>, Metrics), SimError> {
    let programs: Vec<LearnProgram> = g
        .vertices()
        .map(|v| LearnProgram {
            out: orientation.out(v).to_vec(),
            learned: Vec::new(),
            neighbors: Vec::new(),
        })
        .collect();
    let out = run(g, programs, cfg)?;
    Ok((
        out.programs.into_iter().map(|p| p.learned).collect(),
        out.metrics,
    ))
}

/// Ground truth for tests: the edges induced by the neighborhood of `v`.
pub fn induced_neighborhood_edges(g: &Graph, v: VertexId) -> Vec<EdgeId> {
    let nbrs: HashMap<VertexId, ()> = g.neighbors(v).iter().map(|&w| (w, ())).collect();
    let mut out = Vec::new();
    for &u in g.neighbors(v) {
        for &w in g.neighbors(u) {
            if u < w && nbrs.contains_key(&w) {
                out.push(EdgeId::new(u, w));
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use planar_lib::gen;

    #[test]
    fn centralized_orientation_bounds() {
        let g = gen::random_maximal_planar(60, 3);
        let o = degeneracy_orientation(&g);
        assert!(o.covers(&g));
        assert!(o.max_outdegree() <= 5, "planar degeneracy is at most 5");
        let g = gen::random_outerplanar(40, 3);
        let o = degeneracy_orientation(&g);
        assert!(o.covers(&g));
        assert!(
            o.max_outdegree() <= 2,
            "outerplanar degeneracy is at most 2"
        );
        let g = gen::random_tree(40, 3);
        assert!(degeneracy_orientation(&g).max_outdegree() <= 1);
    }

    #[test]
    fn distributed_peeling_matches_centralized_bound() {
        let g = gen::random_maximal_planar(50, 9);
        let (o, metrics) = peel_orientation(&g, 5, &SimConfig::default()).unwrap();
        assert!(o.covers(&g));
        assert!(o.max_outdegree() <= 5);
        // O(log n) iterations; generous cap.
        assert!(metrics.rounds <= 40, "rounds = {}", metrics.rounds);
    }

    #[test]
    fn neighborhood_learning_is_exact_and_constant_round() {
        for (g, k) in [
            (gen::random_maximal_planar(40, 4), 5),
            (gen::random_outerplanar(30, 4), 2),
            (gen::triangulated_grid(5, 6), 5),
        ] {
            let o = degeneracy_orientation(&g);
            assert!(o.max_outdegree() <= k);
            let cfg = SimConfig {
                budget_words: k + 2,
                ..Default::default()
            };
            let (learned, metrics) = learn_neighborhoods(&g, &o, &cfg).unwrap();
            assert_eq!(metrics.rounds, 1, "one-round exchange");
            for v in g.vertices() {
                assert_eq!(
                    learned[v.index()],
                    induced_neighborhood_edges(&g, v),
                    "vertex {v}"
                );
            }
        }
    }

    #[test]
    fn budget_violation_when_orientation_too_wide() {
        // A star oriented out of the hub has out-degree n-1.
        let g = gen::star(12);
        let o = Orientation {
            out: std::iter::once(g.neighbors(VertexId(0)).to_vec())
                .chain((1..12).map(|_| Vec::new()))
                .collect(),
        };
        let cfg = SimConfig {
            budget_words: 4,
            ..Default::default()
        };
        assert!(learn_neighborhoods(&g, &o, &cfg).is_err());
    }

    #[test]
    fn triangle_free_graphs_learn_nothing() {
        let g = gen::grid(4, 4); // bipartite: no triangles
        let o = degeneracy_orientation(&g);
        let (learned, _) = learn_neighborhoods(&g, &o, &SimConfig::default()).unwrap();
        assert!(learned.iter().all(Vec::is_empty));
    }

    #[test]
    fn simultaneous_peel_keeps_each_edge_once() {
        // A single edge: both endpoints peel in iteration 1.
        let g = gen::path(2);
        let (o, _) = peel_orientation(&g, 5, &SimConfig::default()).unwrap();
        assert!(o.covers(&g));
        assert_eq!(o.out(VertexId(0)).len() + o.out(VertexId(1)).len(), 1);
    }
}
