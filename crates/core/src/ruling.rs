//! The Theta(log* n) extension of Lemma 5.3: a deterministic distributed
//! algorithm computing an **independent vertex set of the line graph
//! `L(G)` that is dominating in `L(G)^2`** — i.e. a *maximal matching*:
//! pairwise non-adjacent edges such that every edge of `G` shares an
//! endpoint with a matched edge (distance <= 1 in `L(G)`, hence dominating
//! in `L(G)^2`).
//!
//! Construction (for graphs with a bounded-out-degree orientation, e.g.
//! outerplanar graphs with out-degree <= 2):
//!
//! 1. split the out-edges by slot: slot `s` holds each vertex's `s`-th
//!    out-edge, so each slot is a *functional graph* (out-degree <= 1);
//! 2. Cole–Vishkin color reduction along the successor pointers: starting
//!    from the `O(log n)`-bit ids, `O(log* n)` iterations reach < 8 colors
//!    (5 iterations suffice for 64-bit ids — the `log* n` of every feasible
//!    `n`);
//! 3. for each color class in turn, unmatched vertices propose their slot
//!    edge to unmatched heads; heads accept the smallest proposer. Eight
//!    constant-round turns per slot make the matching maximal.
//!
//! Every step is a genuine kernel protocol; the measured round count is
//! `O(max_outdegree · (log* n + colors))` — constant in `n` for outerplanar
//! inputs, which the T4 experiment demonstrates.

use std::collections::HashMap;

use congest_sim::{run, Metrics, NodeCtx, NodeProgram, SimConfig, SimError, Words};
use planar_graph::{EdgeId, Graph, VertexId};

use crate::neighborhood::Orientation;

/// Number of Cole–Vishkin iterations: enough to reduce 64-bit colors below
/// 8 (64 -> <128 -> <14 -> <8 -> <6 -> <6); this *is* `log* n` for every
/// representable `n`.
const CV_ITERS: usize = 5;
/// Colors remaining after reduction.
const COLOR_TURNS: u64 = 8;

/// Messages of the per-slot matching protocol.
#[derive(Clone, Debug)]
enum MatchMsg {
    /// CV phase: my current color (also the successor announcement).
    Color(u64),
    /// Turn phase: I propose our slot edge.
    Propose,
    /// Turn phase: I accept your proposal.
    Accept,
    /// Turn phase: I am now matched.
    Matched,
    /// Keep-alive.
    Tick,
}

impl Words for MatchMsg {
    fn words(&self) -> usize {
        match self {
            MatchMsg::Color(_) => 3,
            _ => 1,
        }
    }
}

#[derive(Clone, Debug)]
struct SlotProgram {
    id: VertexId,
    /// My successor in this slot (the head of my slot out-edge).
    succ: Option<VertexId>,
    /// Vertices whose slot out-edge points at me (learned in round 1).
    preds: Vec<VertexId>,
    color: u64,
    succ_color: Option<u64>,
    announced: bool,
    cv_done: usize,
    matched: bool,
    nbr_matched: HashMap<VertexId, bool>,
    /// The matched edge, if I am an endpoint of one chosen this slot.
    matched_edge: Option<EdgeId>,
    /// Proposals received this turn.
    proposals: Vec<VertexId>,
    round_in_turn: u8,
    turn: u64,
    neighbors: Vec<VertexId>,
}

impl SlotProgram {
    fn broadcast(&self, msg: MatchMsg) -> Vec<(VertexId, MatchMsg)> {
        self.neighbors.iter().map(|&w| (w, msg.clone())).collect()
    }

    /// One Cole–Vishkin step: new color from the lowest bit differing from
    /// the successor's color (roots use bit 0 of their own color).
    fn cv_step(&mut self) {
        let new = match self.succ_color {
            Some(sc) => {
                let diff = self.color ^ sc;
                if diff == 0 {
                    // Defensive: cannot occur while the coloring stays
                    // proper along successor edges, but never shift by 64.
                    (self.color & 1) ^ 1
                } else {
                    let i = diff.trailing_zeros() as u64;
                    2 * i + ((self.color >> i) & 1)
                }
            }
            None => self.color & 1,
        };
        self.color = new;
    }

    fn turn_messages(&mut self) -> Vec<(VertexId, MatchMsg)> {
        // Sub-round structure per turn: 0 = propose, 1 = accept, 2 = settle.
        match self.round_in_turn {
            0 => {
                let mut msgs = self.broadcast(MatchMsg::Tick);
                if !self.matched && self.color == self.turn {
                    if let Some(h) = self.succ {
                        if !self.nbr_matched.get(&h).copied().unwrap_or(false) {
                            msgs.retain(|(w, _)| *w != h);
                            msgs.push((h, MatchMsg::Propose));
                        }
                    }
                }
                msgs
            }
            1 => {
                let mut msgs = self.broadcast(MatchMsg::Tick);
                if !self.matched && !self.proposals.is_empty() {
                    let winner = *self.proposals.iter().min().expect("non-empty");
                    self.matched = true;
                    self.matched_edge = Some(EdgeId::new(self.id, winner));
                    msgs = self.broadcast(MatchMsg::Matched);
                    msgs.retain(|(w, _)| *w != winner);
                    msgs.push((winner, MatchMsg::Accept));
                }
                self.proposals.clear();
                msgs
            }
            _ => {
                // Settle: accepted proposers announce they are matched.
                if self.matched_edge.map(|e| e.contains(self.id)) == Some(true) && !self.matched {
                    self.matched = true;
                    return self.broadcast(MatchMsg::Matched);
                }
                self.broadcast(MatchMsg::Tick)
            }
        }
    }
}

impl NodeProgram for SlotProgram {
    type Msg = MatchMsg;

    fn init(&mut self, ctx: &NodeCtx<'_>) -> Vec<(VertexId, MatchMsg)> {
        self.neighbors = ctx.neighbors.to_vec();
        // Round 1: announce the successor relation — a Color message to the
        // successor marks the sender as one of its predecessors.
        let mut msgs = self.broadcast(MatchMsg::Tick);
        if let Some(h) = self.succ {
            msgs.retain(|(w, _)| *w != h);
            msgs.push((h, MatchMsg::Color(self.color)));
        }
        msgs
    }

    fn on_round(
        &mut self,
        _ctx: &NodeCtx<'_>,
        inbox: &[(VertexId, MatchMsg)],
    ) -> Vec<(VertexId, MatchMsg)> {
        // Record incoming information.
        for (from, msg) in inbox {
            match msg {
                MatchMsg::Color(c) => {
                    if Some(*from) == self.succ {
                        self.succ_color = Some(*c);
                    }
                    if !self.announced && !self.preds.contains(from) {
                        self.preds.push(*from);
                    }
                }
                MatchMsg::Propose => self.proposals.push(*from),
                MatchMsg::Accept => {
                    self.matched_edge = Some(EdgeId::new(self.id, *from));
                }
                MatchMsg::Matched => {
                    self.nbr_matched.insert(*from, true);
                }
                MatchMsg::Tick => {}
            }
        }
        // Phase 0: the first reception round only gathers predecessors
        // (senders of the init Color announcements), then tells them our
        // initial color — they are exactly the vertices that need it.
        if !self.announced {
            self.announced = true;
            let mut msgs = self.broadcast(MatchMsg::Tick);
            for p in self.preds.clone() {
                msgs.retain(|(w, _)| *w != p);
                msgs.push((p, MatchMsg::Color(self.color)));
            }
            return msgs;
        }
        // Phase 1: CV iterations, one per round, everyone in lockstep: the
        // color received this round is the successor's value from the same
        // iteration index as ours.
        if self.cv_done < CV_ITERS {
            self.cv_step();
            self.cv_done += 1;
            let mut msgs = self.broadcast(MatchMsg::Tick);
            for p in self.preds.clone() {
                msgs.retain(|(w, _)| *w != p);
                msgs.push((p, MatchMsg::Color(self.color)));
            }
            return msgs;
        }
        // Phase 2: color turns.
        if self.turn >= COLOR_TURNS {
            return Vec::new();
        }
        let msgs = self.turn_messages();
        self.round_in_turn += 1;
        if self.round_in_turn == 3 {
            self.round_in_turn = 0;
            self.turn += 1;
            if self.turn >= COLOR_TURNS {
                return Vec::new(); // quiesce after the final settle
            }
        }
        msgs
    }
}

/// The result of the ruling-edge-set computation.
#[derive(Clone, Debug)]
pub struct RulingEdgeSet {
    /// The matching: pairwise non-adjacent edges (independent in `L(G)`).
    pub edges: Vec<EdgeId>,
    /// Measured kernel cost over all slots.
    pub metrics: Metrics,
}

/// Computes a maximal matching — an independent set of `L(G)` dominating
/// `L(G)^2` — deterministically, slot by slot over the orientation.
///
/// # Errors
///
/// Propagates kernel errors.
///
/// # Panics
///
/// Panics if the orientation does not cover `g`.
pub fn ruling_edge_set(
    g: &Graph,
    orientation: &Orientation,
    cfg: &SimConfig,
) -> Result<RulingEdgeSet, SimError> {
    assert!(orientation.covers(g), "orientation must cover the graph");
    let slots = orientation.max_outdegree();
    let mut matched_vertices: Vec<bool> = vec![false; g.vertex_count()];
    let mut edges: Vec<EdgeId> = Vec::new();
    let mut metrics = Metrics::new();
    for s in 0..slots {
        let programs: Vec<SlotProgram> = g
            .vertices()
            .map(|v| SlotProgram {
                id: v,
                succ: orientation.out(v).get(s).copied().filter(|h| {
                    // Skip edges already dominated at both ends.
                    !(matched_vertices[v.index()] && matched_vertices[h.index()])
                }),
                preds: Vec::new(),
                color: v.0 as u64,
                succ_color: None,
                announced: false,
                cv_done: 0,
                matched: matched_vertices[v.index()],
                nbr_matched: HashMap::new(),
                matched_edge: None,
                proposals: Vec::new(),
                round_in_turn: 0,
                turn: 0,
                neighbors: Vec::new(),
            })
            .collect();
        let out = run(g, programs, cfg)?;
        metrics.add(out.metrics);
        for p in &out.programs {
            if let Some(e) = p.matched_edge {
                if !matched_vertices[e.lo().index()] && !matched_vertices[e.hi().index()] {
                    matched_vertices[e.lo().index()] = true;
                    matched_vertices[e.hi().index()] = true;
                    edges.push(e);
                }
            }
        }
    }
    edges.sort();
    edges.dedup();
    Ok(RulingEdgeSet { edges, metrics })
}

/// Validates the ruling-set properties: a matching (independent in `L(G)`)
/// that dominates every edge (maximality, hence domination in `L(G)^2`).
pub fn is_valid_ruling_set(g: &Graph, edges: &[EdgeId]) -> bool {
    let mut used = vec![false; g.vertex_count()];
    for e in edges {
        if !g.has_edge(e.lo(), e.hi()) || used[e.lo().index()] || used[e.hi().index()] {
            return false;
        }
        used[e.lo().index()] = true;
        used[e.hi().index()] = true;
    }
    g.edges()
        .all(|e| used[e.lo().index()] || used[e.hi().index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighborhood::degeneracy_orientation;
    use planar_lib::gen;

    fn check(g: &Graph) -> RulingEdgeSet {
        let o = degeneracy_orientation(g);
        let rs = ruling_edge_set(g, &o, &SimConfig::default()).unwrap();
        assert!(
            is_valid_ruling_set(g, &rs.edges),
            "invalid ruling set on {} vertices: {:?}",
            g.vertex_count(),
            rs.edges
        );
        rs
    }

    #[test]
    fn path_and_cycle() {
        check(&gen::path(10));
        check(&gen::cycle(9));
        check(&gen::cycle(10));
    }

    #[test]
    fn stars_and_trees() {
        check(&gen::star(8));
        check(&gen::random_tree(40, 5));
    }

    #[test]
    fn outerplanar_random() {
        for seed in 0..8 {
            check(&gen::random_outerplanar(25, seed));
            check(&gen::sparse_outerplanar(30, 6, seed));
        }
    }

    #[test]
    fn planar_families() {
        check(&gen::grid(5, 6));
        check(&gen::random_maximal_planar(30, 2));
        check(&gen::k4_subdivided(5));
    }

    #[test]
    fn rounds_are_constant_in_n() {
        // The log* behaviour: round counts must not grow with n (log* is
        // constant over this whole range).
        let r1 = check(&gen::random_outerplanar(32, 7)).metrics.rounds;
        let r2 = check(&gen::random_outerplanar(1024, 7)).metrics.rounds;
        assert!(r2 <= r1 + 10, "rounds should be ~constant: {r1} vs {r2}");
    }

    #[test]
    fn single_edge() {
        let rs = check(&gen::path(2));
        assert_eq!(rs.edges.len(), 1);
    }
}
