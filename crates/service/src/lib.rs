//! # planar-service
//!
//! Embedding-as-a-service: a long-lived, multi-tenant layer over the
//! `planar-embedding` driver stack. This is the production framing of
//! the ROADMAP north star — not one big batch run, but thousands of
//! independent client graphs *resident* at once, each mutating under
//! churn and each keeping its embedding, certificates, and metrics
//! continuously fresh.
//!
//! The moving parts:
//!
//! * [`ServiceState`] — the tenant table. Each [`Tenant`] owns a
//!   [`ResidentEmbedding`](planar_embedding::ResidentEmbedding) (graph,
//!   retained recursion arena, rotation, certificates, and a warm
//!   per-tenant [`KernelCache`](congest_sim::KernelCache) reused across
//!   deltas), a running [`TenantStats`], and the per-delta
//!   [`DeltaRecord`] log the bench harness aggregates into latency
//!   percentiles.
//! * [`Delta`] — the typed mutation API ([`delta`]): edge inserts and
//!   deletes, node arrivals and departures, validated against the
//!   resident graph before anything runs.
//! * [`preflight`] — the one-sided gate ([`gate`]): deletions are
//!   accepted as planar by minor-closedness, density-violating inserts
//!   are rejected *without re-embedding*, co-facial witnesses promise
//!   success; everything else defers to the embedder.
//! * Incremental re-embedding — an applied delta is classified into a
//!   typed [`DeltaClass`] by the delta planner
//!   (`planar_embedding::planner`), the resident BFS tree is repaired
//!   host-side, and only the dirty region of the level-synchronous
//!   recursion re-runs, with certificate labels spliced
//!   (`planar_embedding::incremental`). The bit-identity contract holds
//!   for every class: rotation, certification verdict, and planarity
//!   outcome equal a full re-embed of the same graph. With
//!   [`OracleMode::Always`] the service *checks* that contract on every
//!   delta by running the full re-embed oracle and diffing; the
//!   planned-vs-taken class pair lands in each [`DeltaRecord`] for the
//!   DST churn oracle to audit.
//! * [`ChurnGen`] — the seeded sensor-fleet workload ([`churn`]),
//!   shared with the DST scenario space.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod delta;
pub mod gate;

use std::time::Instant;

use planar_embedding::{
    embed_distributed, EmbedError, EmbedderConfig, Kernel, ReembedReport, ResidentEmbedding,
};
use planar_graph::{Graph, RotationSystem};

pub use churn::ChurnGen;
pub use delta::{apply_delta, Delta, DeltaError};
pub use gate::{preflight, GateVerdict};
pub use planar_embedding::DeltaClass;

/// When the service runs the full re-embed oracle against the
/// incremental result.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OracleMode {
    /// Never (production: trust the bit-identity contract).
    #[default]
    Off,
    /// On every applied or planarity-rejected delta (soaks, CI gates,
    /// property tests): run [`embed_distributed`] on the mutated graph
    /// and diff rotation, certification verdict, and planarity outcome.
    Always,
}

/// Service-wide configuration, applied to every tenant.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Kernel simulation parameters (budget, watchdog, trace sink).
    /// Fault plans are not supported here — tenants are long-lived
    /// embeddings, not chaos runs.
    pub sim: congest_sim::SimConfig,
    /// Which kernel simulates tenant phases.
    pub kernel: Kernel,
    /// Keep distributed certification artifacts resident and re-verify
    /// (with label splicing) on every delta.
    pub certify: bool,
    /// Check framework invariants at every merge (quadratic-ish; off by
    /// default in the service path).
    pub check_invariants: bool,
    /// Full re-embed oracle policy.
    pub oracle: OracleMode,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            sim: congest_sim::SimConfig::default(),
            kernel: Kernel::default(),
            certify: true,
            check_invariants: false,
            oracle: OracleMode::Off,
        }
    }
}

impl ServiceConfig {
    /// The embedder configuration tenants run under.
    fn embedder(&self) -> EmbedderConfig {
        EmbedderConfig {
            sim: self.sim.clone(),
            check_invariants: self.check_invariants,
            reliability: None,
            certify: self.certify,
            kernel: self.kernel,
            scheduler: planar_embedding::Scheduler::LevelSync,
        }
    }
}

/// Handle of one tenant in a [`ServiceState`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TenantId(usize);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// How one delta ended.
#[derive(Clone, Debug, PartialEq)]
pub enum DeltaOutcome {
    /// The delta was applied; the resident embedding now covers the
    /// mutated graph.
    Applied {
        /// The re-embedding path taken and its reuse accounting.
        report: ReembedReport,
        /// The pre-flight gate's verdict for the delta.
        gate: GateVerdict,
    },
    /// The delta would make the graph non-planar; the resident state is
    /// unchanged.
    RejectedNonPlanar {
        /// The gate's verdict — [`GateVerdict::DefinitelyNonPlanar`]
        /// when the gate short-circuited (no re-embedding ran at all).
        gate: GateVerdict,
    },
    /// The delta was structurally invalid for the resident graph.
    RejectedInvalid {
        /// Why.
        error: DeltaError,
    },
}

/// One entry of a tenant's delta log.
#[derive(Clone, Debug)]
pub struct DeltaRecord {
    /// The delta as submitted.
    pub delta: Delta,
    /// How it ended.
    pub outcome: DeltaOutcome,
    /// The [`DeltaClass`] the re-embedding *executed* — the planner's
    /// class on the incremental path, [`DeltaClass::Fallback`] for a full
    /// re-run. `None` for deltas that never reached the embedder
    /// (invalid, or gate-short-circuited).
    pub class: Option<DeltaClass>,
    /// The class the planner *predicted* before executing anything.
    /// Disagreement with [`class`](Self::class) means a staged repair was
    /// rejected by its oracle-grade verification — the DST churn oracle
    /// raises a violation on any mismatch.
    pub planned: Option<DeltaClass>,
    /// Distinct dirty vertices the planner scoped the rebuild to (0 on
    /// the full path and for deltas that never reached the embedder).
    pub dirty_region: usize,
    /// Wall time of the service-side handling (validation, gate,
    /// incremental re-embed) in nanoseconds.
    pub service_nanos: u128,
    /// Wall time of the full re-embed oracle, when one ran.
    pub oracle_nanos: Option<u128>,
    /// The first disagreement with the oracle, if any — a contract
    /// violation ([`ServiceState::divergences`] gates on these).
    pub diverged: Option<String>,
}

/// Running per-tenant counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Deltas applied (incremental + full fallbacks).
    pub applied: usize,
    /// Applied via the incremental path (the sum of the three
    /// per-class counters below).
    pub incremental: usize,
    /// Applied incrementally as [`DeltaClass::TreePreserving`].
    pub tree_preserving: usize,
    /// Applied incrementally as [`DeltaClass::TreeRepairable`].
    pub tree_repairable: usize,
    /// Applied incrementally as [`DeltaClass::VertexSetChange`].
    pub vertex_set: usize,
    /// Applied via a recorded full fallback (tree or vertex-set change).
    pub full_fallbacks: usize,
    /// Deltas rejected as planarity-breaking.
    pub rejected_nonplanar: usize,
    /// Of those, rejected by the gate alone (no re-embedding ran).
    pub gate_short_circuits: usize,
    /// Deltas rejected as structurally invalid.
    pub rejected_invalid: usize,
    /// Sequential kernel rounds across all re-embeddings.
    pub rounds: usize,
    /// Full-oracle runs performed.
    pub oracle_runs: usize,
    /// Oracle disagreements observed (must stay 0).
    pub divergences: usize,
}

impl TenantStats {
    /// Applied deltas executed as `class` ([`DeltaClass::Fallback`] maps
    /// to the full-fallback counter).
    pub fn by_class(&self, class: DeltaClass) -> usize {
        match class {
            DeltaClass::TreePreserving => self.tree_preserving,
            DeltaClass::TreeRepairable => self.tree_repairable,
            DeltaClass::VertexSetChange => self.vertex_set,
            DeltaClass::Fallback => self.full_fallbacks,
        }
    }
}

/// One resident client graph with its embedding and history.
pub struct Tenant {
    label: Option<&'static str>,
    resident: ResidentEmbedding,
    stats: TenantStats,
    records: Vec<DeltaRecord>,
}

impl Tenant {
    /// The optional label given at creation (e.g. the generator family).
    pub fn label(&self) -> Option<&'static str> {
        self.label
    }

    /// The tenant's current graph.
    pub fn graph(&self) -> &Graph {
        self.resident.graph()
    }

    /// The tenant's resident rotation system.
    pub fn rotation(&self) -> &RotationSystem {
        self.resident.rotation()
    }

    /// The tenant's resident certification, when the service certifies.
    pub fn certification(&self) -> Option<&planar_embedding::Certification> {
        self.resident.certification()
    }

    /// `true` if `{u, v}` is an edge of the tenant's resident BFS tree.
    /// Deleting a non-tree edge is guaranteed to take the incremental
    /// path; benchmarks use this to construct incremental-friendly
    /// workloads.
    pub fn is_tree_edge(&self, u: planar_graph::VertexId, v: planar_graph::VertexId) -> bool {
        self.resident.is_tree_edge(u, v)
    }

    /// Running counters.
    pub fn stats(&self) -> &TenantStats {
        &self.stats
    }

    /// The per-delta log, oldest first.
    pub fn records(&self) -> &[DeltaRecord] {
        &self.records
    }
}

impl std::fmt::Debug for Tenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tenant")
            .field("label", &self.label)
            .field("resident", &self.resident)
            .field("stats", &self.stats)
            .finish()
    }
}

/// A service-level failure (as opposed to a per-delta rejection, which
/// is a normal [`DeltaOutcome`]).
#[derive(Debug)]
pub enum ServiceError {
    /// The tenant id does not exist.
    UnknownTenant(TenantId),
    /// The embedder failed for a reason other than non-planarity — an
    /// internal error, never an input condition.
    Embed(EmbedError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownTenant(id) => write!(f, "unknown {id}"),
            ServiceError::Embed(e) => write!(f, "embedder failure: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// The multi-tenant embedding service: a tenant table plus the shared
/// configuration. See the crate docs for the architecture.
pub struct ServiceState {
    cfg: ServiceConfig,
    tenants: Vec<Tenant>,
}

impl ServiceState {
    /// An empty service under `cfg`.
    pub fn new(cfg: ServiceConfig) -> Self {
        ServiceState {
            cfg,
            tenants: Vec::new(),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Admits `graph` as a new tenant: builds its resident embedding
    /// (one full level-synchronous run with the arena retained) and
    /// returns its handle.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Embed`] when the graph cannot be embedded (e.g.
    /// non-planar or disconnected at admission).
    pub fn create_tenant(&mut self, graph: Graph) -> Result<TenantId, ServiceError> {
        self.create_tenant_labeled(graph, None)
    }

    /// [`create_tenant`](Self::create_tenant) with a label carried into
    /// reports (benchmarks label tenants by generator family).
    pub fn create_tenant_labeled(
        &mut self,
        graph: Graph,
        label: Option<&'static str>,
    ) -> Result<TenantId, ServiceError> {
        let (resident, _report) =
            ResidentEmbedding::build(graph, &self.cfg.embedder()).map_err(ServiceError::Embed)?;
        let id = TenantId(self.tenants.len());
        self.tenants.push(Tenant {
            label,
            resident,
            stats: TenantStats::default(),
            records: Vec::new(),
        });
        Ok(id)
    }

    /// Number of resident tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Looks up a tenant.
    pub fn tenant(&self, id: TenantId) -> Option<&Tenant> {
        self.tenants.get(id.0)
    }

    /// Iterates over all tenants.
    pub fn tenants(&self) -> impl Iterator<Item = (TenantId, &Tenant)> {
        self.tenants
            .iter()
            .enumerate()
            .map(|(i, t)| (TenantId(i), t))
    }

    /// Total oracle divergences across all tenants — the CI gate reads
    /// this; any nonzero value is a bit-identity contract violation.
    pub fn divergences(&self) -> usize {
        self.tenants.iter().map(|t| t.stats.divergences).sum()
    }

    /// Applies one delta to a tenant: validation, pre-flight gate,
    /// incremental re-embedding, and (per [`OracleMode`]) the full
    /// re-embed oracle check. Rejections are normal outcomes, not
    /// errors; the resident state is untouched by any rejection.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownTenant`] for a bad handle;
    /// [`ServiceError::Embed`] only for internal embedder failures.
    pub fn apply(&mut self, id: TenantId, delta: Delta) -> Result<DeltaOutcome, ServiceError> {
        let oracle_on = self.cfg.oracle == OracleMode::Always;
        let embedder = self.cfg.embedder();
        let tenant = self
            .tenants
            .get_mut(id.0)
            .ok_or(ServiceError::UnknownTenant(id))?;

        let started = Instant::now();
        // 1. Structural validation; an invalid delta never reaches the
        //    embedder.
        let mutated = match apply_delta(tenant.resident.graph(), &delta) {
            Ok(g) => g,
            Err(error) => {
                let outcome = DeltaOutcome::RejectedInvalid { error };
                tenant.stats.rejected_invalid += 1;
                tenant.records.push(DeltaRecord {
                    delta,
                    outcome: outcome.clone(),
                    class: None,
                    planned: None,
                    dirty_region: 0,
                    service_nanos: started.elapsed().as_nanos(),
                    oracle_nanos: None,
                    diverged: None,
                });
                return Ok(outcome);
            }
        };
        let oracle_graph = oracle_on.then(|| mutated.clone());

        // 2. One-sided pre-flight gate: a density rejection skips the
        //    re-embedding entirely.
        let gate = preflight(tenant.resident.graph(), tenant.resident.rotation(), &delta);
        let mut class = None;
        let mut planned = None;
        let mut dirty_region = 0;
        let outcome = if gate == GateVerdict::DefinitelyNonPlanar {
            tenant.stats.rejected_nonplanar += 1;
            tenant.stats.gate_short_circuits += 1;
            DeltaOutcome::RejectedNonPlanar { gate }
        } else {
            // 3. Incremental re-embedding (full fallback recorded in the
            //    report when the delta planner finds no local repair). A
            //    departure carries the removed id as an explicit planning
            //    hint — the renumbered graph alone cannot recover it.
            let result = match &delta {
                Delta::RemoveNode(v) => tenant.resident.reembed_departure(mutated, *v),
                _ => tenant.resident.reembed(mutated),
            };
            match result {
                Ok(report) => {
                    tenant.stats.applied += 1;
                    let taken = report.taken();
                    if report.is_incremental() {
                        tenant.stats.incremental += 1;
                        match taken {
                            DeltaClass::TreePreserving => tenant.stats.tree_preserving += 1,
                            DeltaClass::TreeRepairable => tenant.stats.tree_repairable += 1,
                            DeltaClass::VertexSetChange => tenant.stats.vertex_set += 1,
                            DeltaClass::Fallback => unreachable!("incremental path has a class"),
                        }
                    } else {
                        tenant.stats.full_fallbacks += 1;
                    }
                    tenant.stats.rounds += report.rounds;
                    class = Some(taken);
                    planned = Some(report.planned);
                    dirty_region = report.dirty_region();
                    DeltaOutcome::Applied { report, gate }
                }
                Err(EmbedError::NonPlanar) => {
                    tenant.stats.rejected_nonplanar += 1;
                    DeltaOutcome::RejectedNonPlanar { gate }
                }
                Err(e) => return Err(ServiceError::Embed(e)),
            }
        };
        let service_nanos = started.elapsed().as_nanos();

        // 4. The full re-embed oracle: embed the mutated graph from
        //    scratch and diff against the incremental result.
        let (oracle_nanos, diverged) = match oracle_graph {
            Some(g) => {
                let t0 = Instant::now();
                let oracle = embed_distributed(&g, &embedder);
                let nanos = t0.elapsed().as_nanos();
                tenant.stats.oracle_runs += 1;
                let divergence = compare_with_oracle(&outcome, &oracle, tenant);
                if divergence.is_some() {
                    tenant.stats.divergences += 1;
                }
                (Some(nanos), divergence)
            }
            None => (None, None),
        };
        tenant.records.push(DeltaRecord {
            delta,
            outcome: outcome.clone(),
            class,
            planned,
            dirty_region,
            service_nanos,
            oracle_nanos,
            diverged,
        });
        Ok(outcome)
    }
}

/// Diffs one delta's outcome against the full re-embed oracle on the
/// mutated graph: planarity outcome, rotation system, certification
/// verdict — the bit-identity contract, nothing more (metrics and round
/// tallies are intentionally out of scope).
fn compare_with_oracle(
    outcome: &DeltaOutcome,
    oracle: &Result<planar_embedding::EmbeddingOutcome, EmbedError>,
    tenant: &Tenant,
) -> Option<String> {
    match (outcome, oracle) {
        (DeltaOutcome::Applied { .. }, Ok(full)) => {
            if tenant.resident.rotation() != &full.rotation {
                return Some("rotation differs from full re-embed".into());
            }
            let resident_cert = tenant.resident.certification();
            match (resident_cert, &full.certification) {
                (None, None) => None,
                (Some(a), Some(b)) => {
                    if a.certificates != b.certificates {
                        Some("certificates differ from full re-embed".into())
                    } else if a.report.accepted != b.report.accepted
                        || a.report.rejections != b.report.rejections
                    {
                        Some("certification verdict differs from full re-embed".into())
                    } else {
                        None
                    }
                }
                _ => Some("certification presence differs from full re-embed".into()),
            }
        }
        (DeltaOutcome::Applied { .. }, Err(e)) => {
            Some(format!("service applied but full re-embed failed: {e}"))
        }
        (DeltaOutcome::RejectedNonPlanar { .. }, Err(EmbedError::NonPlanar)) => None,
        (DeltaOutcome::RejectedNonPlanar { .. }, Ok(_)) => {
            Some("service rejected as non-planar but full re-embed succeeded".into())
        }
        (DeltaOutcome::RejectedNonPlanar { .. }, Err(e)) => Some(format!(
            "service rejected as non-planar but full re-embed failed differently: {e}"
        )),
        // Invalid deltas never run either path.
        (DeltaOutcome::RejectedInvalid { .. }, _) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planar_graph::VertexId;
    use planar_lib::gen;

    fn service(oracle: OracleMode) -> ServiceState {
        ServiceState::new(ServiceConfig {
            oracle,
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn tenants_apply_deltas_and_keep_embeddings_fresh() {
        let mut svc = service(OracleMode::Always);
        let id = svc.create_tenant(gen::grid(4, 4)).unwrap();
        let out = svc
            .apply(
                id,
                Delta::AddNode {
                    attach: vec![VertexId(0)],
                },
            )
            .unwrap();
        assert!(matches!(out, DeltaOutcome::Applied { .. }));
        let tenant = svc.tenant(id).unwrap();
        assert_eq!(tenant.graph().vertex_count(), 17);
        assert!(tenant.rotation().is_planar_embedding());
        assert!(tenant.certification().unwrap().accepted());
        assert_eq!(svc.divergences(), 0);
        assert_eq!(tenant.stats().applied, 1);
        assert_eq!(tenant.records().len(), 1);
    }

    #[test]
    fn gate_short_circuits_density_violations() {
        let mut svc = service(OracleMode::Always);
        let g = gen::random_maximal_planar(10, 7);
        let id = svc.create_tenant(g.clone()).unwrap();
        let (u, v) = {
            let mut pick = None;
            'outer: for a in g.vertices() {
                for b in g.vertices() {
                    if a < b && !g.has_edge(a, b) {
                        pick = Some((a, b));
                        break 'outer;
                    }
                }
            }
            pick.unwrap()
        };
        let out = svc.apply(id, Delta::InsertEdge(u, v)).unwrap();
        assert_eq!(
            out,
            DeltaOutcome::RejectedNonPlanar {
                gate: GateVerdict::DefinitelyNonPlanar
            }
        );
        let tenant = svc.tenant(id).unwrap();
        assert_eq!(tenant.stats().gate_short_circuits, 1);
        assert_eq!(tenant.graph(), &g, "rejection leaves the tenant untouched");
        assert_eq!(svc.divergences(), 0, "gate rejection must match the oracle");
    }

    #[test]
    fn invalid_deltas_are_rejected_without_embedding() {
        let mut svc = service(OracleMode::Off);
        let id = svc.create_tenant(gen::path(4)).unwrap();
        let out = svc
            .apply(id, Delta::DeleteEdge(VertexId(0), VertexId(1)))
            .unwrap();
        assert!(matches!(
            out,
            DeltaOutcome::RejectedInvalid {
                error: DeltaError::WouldDisconnect
            }
        ));
        assert_eq!(svc.tenant(id).unwrap().stats().rejected_invalid, 1);
    }

    #[test]
    fn unknown_tenants_error() {
        let mut svc = service(OracleMode::Off);
        assert!(matches!(
            svc.apply(TenantId(7), Delta::RemoveNode(VertexId(0))),
            Err(ServiceError::UnknownTenant(_))
        ));
    }

    #[test]
    fn churn_under_oracle_stays_bit_identical() {
        let mut svc = service(OracleMode::Always);
        let id = svc.create_tenant(gen::wheel(10)).unwrap();
        let mut churn = ChurnGen::new(3);
        for _ in 0..6 {
            let delta = churn.next_delta(svc.tenant(id).unwrap().graph());
            svc.apply(id, delta).unwrap();
        }
        assert_eq!(svc.divergences(), 0);
        let stats = svc.tenant(id).unwrap().stats();
        assert_eq!(stats.oracle_runs, stats.applied + stats.rejected_nonplanar);
    }
}
