//! The one-sided pre-flight gate: decide cheap deltas without paying for
//! a re-embedding.
//!
//! Modeled on the one-sided-error property-testing discipline of Levi,
//! Medina & Ron (*Property Testing of Planarity in the CONGEST Model*,
//! PAPERS.md): the gate may answer *Unknown* (and let the embedder
//! decide), but when it does answer, the answer is certain —
//!
//! * [`GateVerdict::DefinitelyNonPlanar`] is backed by the density bound
//!   `m > 3n − 6`: the mutated graph cannot be planar, so the service
//!   rejects the delta without re-embedding at all. This is the *same*
//!   bound the driver's density guard applies, so a gate rejection is
//!   bit-identical in outcome to running the full pipeline.
//! * [`GateVerdict::DefinitelyPlanar`] is backed by minor-closedness
//!   (deletions and departures can never break planarity) or by a
//!   witness in the *resident* rotation: endpoints co-facial in the
//!   current embedding admit the new edge inside that face; a node
//!   arrival whose attachments share a face embeds inside it likewise.
//!
//! A `DefinitelyPlanar` verdict still re-embeds (the tenant needs the
//! new rotation); what it saves the operator is alarm triage — only
//! `Unknown` deltas can come back rejected.

use planar_graph::{Graph, RotationSystem, VertexId};

use crate::delta::Delta;

/// The gate's one-sided answer for a delta.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GateVerdict {
    /// The mutated graph is certainly planar (minor-closedness or a
    /// co-facial witness in the resident rotation).
    DefinitelyPlanar,
    /// The mutated graph is certainly non-planar (density bound); the
    /// delta can be rejected without re-embedding.
    DefinitelyNonPlanar,
    /// The gate cannot tell; the re-embedding decides.
    Unknown,
}

/// The driver's density guard, applied to the post-delta counts: planar
/// simple graphs satisfy `m <= 3n - 6` for `n >= 3`.
fn density_rejects(n: usize, m: usize) -> bool {
    n >= 3 && m > 3 * n - 6
}

/// `true` if some face of `rotation` is incident to every vertex in
/// `targets` — the witness that an edge (or a new node's attachment
/// star) can be drawn inside that face.
fn co_facial(rotation: &RotationSystem, targets: &[VertexId]) -> bool {
    rotation.faces().iter().any(|face| {
        targets
            .iter()
            .all(|t| face.iter().any(|&(src, _)| src == *t))
    })
}

/// Judges `delta` against the resident graph and rotation. See the
/// module docs for the soundness argument of each verdict.
///
/// The delta is assumed structurally valid for `g` (the service
/// validates via [`apply_delta`](crate::delta::apply_delta) first);
/// verdicts for invalid deltas are unspecified but never panic.
pub fn preflight(g: &Graph, rotation: &RotationSystem, delta: &Delta) -> GateVerdict {
    let (n, m) = (g.vertex_count(), g.edge_count());
    match delta {
        // Minor-closed: deleting an edge or a vertex of a planar graph
        // leaves a planar graph.
        Delta::DeleteEdge(..) | Delta::RemoveNode(..) => GateVerdict::DefinitelyPlanar,
        Delta::InsertEdge(u, v) => {
            if density_rejects(n, m + 1) {
                GateVerdict::DefinitelyNonPlanar
            } else if co_facial(rotation, &[*u, *v]) {
                GateVerdict::DefinitelyPlanar
            } else {
                GateVerdict::Unknown
            }
        }
        Delta::AddNode { attach } => {
            if density_rejects(n + 1, m + attach.len()) {
                GateVerdict::DefinitelyNonPlanar
            } else if attach.len() <= 1 || co_facial(rotation, attach) {
                // A pendant node is always plantable; a multi-attachment
                // node embeds inside any face its attachments share.
                GateVerdict::DefinitelyPlanar
            } else {
                GateVerdict::Unknown
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planar_lib::{embed, gen};

    #[test]
    fn deletions_are_definitely_planar() {
        let g = gen::grid(3, 3);
        let rot = embed(&g).unwrap();
        assert_eq!(
            preflight(&g, &rot, &Delta::DeleteEdge(VertexId(0), VertexId(1))),
            GateVerdict::DefinitelyPlanar
        );
        assert_eq!(
            preflight(&g, &rot, &Delta::RemoveNode(VertexId(0))),
            GateVerdict::DefinitelyPlanar
        );
    }

    #[test]
    fn density_violations_are_definitely_nonplanar() {
        // A maximal planar graph: any further edge breaks the bound.
        let g = gen::random_maximal_planar(12, 3);
        assert_eq!(g.edge_count(), 3 * 12 - 6);
        let rot = embed(&g).unwrap();
        let (u, v) = {
            let mut pick = None;
            'outer: for a in g.vertices() {
                for b in g.vertices() {
                    if a < b && !g.has_edge(a, b) {
                        pick = Some((a, b));
                        break 'outer;
                    }
                }
            }
            pick.expect("a 12-vertex maximal planar graph is not complete")
        };
        assert_eq!(
            preflight(&g, &rot, &Delta::InsertEdge(u, v)),
            GateVerdict::DefinitelyNonPlanar
        );
    }

    #[test]
    fn co_facial_insertion_is_definitely_planar() {
        // In a 4-cycle's embedding both faces are incident to all four
        // vertices, so the chord is co-facially plantable.
        let g = gen::cycle(4);
        let rot = embed(&g).unwrap();
        assert_eq!(
            preflight(&g, &rot, &Delta::InsertEdge(VertexId(0), VertexId(2))),
            GateVerdict::DefinitelyPlanar
        );
    }

    #[test]
    fn pendant_arrival_is_definitely_planar() {
        let g = gen::grid(3, 3);
        let rot = embed(&g).unwrap();
        assert_eq!(
            preflight(
                &g,
                &rot,
                &Delta::AddNode {
                    attach: vec![VertexId(4)]
                }
            ),
            GateVerdict::DefinitelyPlanar
        );
    }
}
