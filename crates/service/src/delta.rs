//! The typed delta API: the four mutations a tenant graph can receive,
//! with validation that leaves the resident graph untouched on rejection.
//!
//! Deltas model the sensor-fleet churn of Huc–Jarry–Leone–Rolim
//! (*Distributed Planarization and Local Routing Strategies in Sensor
//! Networks*): links appearing ([`Delta::InsertEdge`]) and failing
//! ([`Delta::DeleteEdge`]), nodes arriving ([`Delta::AddNode`]) and
//! departing ([`Delta::RemoveNode`]). [`apply_delta`] materializes the
//! mutated graph *by value* — the service commits it to the resident
//! embedding only after the re-embedding accepts, so an invalid or
//! planarity-breaking delta never corrupts tenant state.
//!
//! Validity here is *structural* (simple graph, connected network —
//! the embedder's input contract), not planarity: a delta producing a
//! non-planar graph is structurally valid and gets rejected later, by
//! the pre-flight gate or the re-embedding itself.

use std::fmt;

use planar_graph::{Graph, GraphError, VertexId};

/// One mutation of a tenant graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Delta {
    /// Insert the undirected edge `{u, v}` (a new sensor link).
    InsertEdge(VertexId, VertexId),
    /// Delete the undirected edge `{u, v}` (a link failure).
    DeleteEdge(VertexId, VertexId),
    /// A node arrival: append a fresh vertex attached to the listed
    /// existing vertices (at least one, to keep the network connected).
    AddNode {
        /// Existing vertices the new node links to.
        attach: Vec<VertexId>,
    },
    /// A node departure: remove the vertex and its incident links;
    /// higher ids shift down by one (the id space stays `0..n`).
    RemoveNode(VertexId),
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Delta::InsertEdge(u, v) => write!(f, "+{{{u},{v}}}"),
            Delta::DeleteEdge(u, v) => write!(f, "-{{{u},{v}}}"),
            Delta::AddNode { attach } => {
                write!(f, "+node(")?;
                for (i, v) in attach.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Delta::RemoveNode(v) => write!(f, "-node({v})"),
        }
    }
}

/// Why a delta was structurally invalid for the graph it targeted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// The underlying graph mutation failed (self-loop, parallel edge,
    /// missing edge, out-of-range vertex).
    Graph(GraphError),
    /// The mutation would disconnect the network, violating the
    /// embedder's input contract.
    WouldDisconnect,
    /// An [`Delta::AddNode`] with no attachments (the arrival would be an
    /// isolated node — a disconnected network).
    EmptyAttachment,
    /// An [`Delta::AddNode`] listing the same attachment twice.
    DuplicateAttachment(VertexId),
    /// A [`Delta::RemoveNode`] that would leave an empty network.
    LastVertex,
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::Graph(e) => write!(f, "{e}"),
            DeltaError::WouldDisconnect => write!(f, "delta would disconnect the network"),
            DeltaError::EmptyAttachment => write!(f, "node arrival with no attachments"),
            DeltaError::DuplicateAttachment(v) => {
                write!(f, "node arrival lists attachment {v} twice")
            }
            DeltaError::LastVertex => write!(f, "cannot remove the last vertex"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<GraphError> for DeltaError {
    fn from(e: GraphError) -> Self {
        DeltaError::Graph(e)
    }
}

/// Applies `delta` to a copy of `g`, returning the mutated graph.
///
/// # Errors
///
/// [`DeltaError`] when the delta is structurally invalid; `g` itself is
/// never modified either way.
pub fn apply_delta(g: &Graph, delta: &Delta) -> Result<Graph, DeltaError> {
    let mut out = g.clone();
    match delta {
        Delta::InsertEdge(u, v) => {
            out.add_edge(*u, *v)?;
        }
        Delta::DeleteEdge(u, v) => {
            out.remove_edge(*u, *v)?;
            if !out.is_connected() {
                return Err(DeltaError::WouldDisconnect);
            }
        }
        Delta::AddNode { attach } => {
            if attach.is_empty() {
                return Err(DeltaError::EmptyAttachment);
            }
            for (i, &v) in attach.iter().enumerate() {
                g.check_vertex(v)?;
                if attach[..i].contains(&v) {
                    return Err(DeltaError::DuplicateAttachment(v));
                }
            }
            let fresh = out.add_vertex();
            for &v in attach {
                out.add_edge(fresh, v)?;
            }
        }
        Delta::RemoveNode(v) => {
            if g.vertex_count() <= 1 {
                return Err(DeltaError::LastVertex);
            }
            out.remove_vertex(*v)?;
            if !out.is_connected() {
                return Err(DeltaError::WouldDisconnect);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle4() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap()
    }

    #[test]
    fn insert_and_delete_round_trip() {
        let g = cycle4();
        let with_chord = apply_delta(&g, &Delta::InsertEdge(VertexId(0), VertexId(2))).unwrap();
        assert!(with_chord.has_edge(VertexId(0), VertexId(2)));
        let back = apply_delta(&with_chord, &Delta::DeleteEdge(VertexId(0), VertexId(2))).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn delete_rejects_disconnection() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        assert_eq!(
            apply_delta(&g, &Delta::DeleteEdge(VertexId(0), VertexId(1))),
            Err(DeltaError::WouldDisconnect)
        );
        assert!(matches!(
            apply_delta(&g, &Delta::DeleteEdge(VertexId(0), VertexId(2))),
            Err(DeltaError::Graph(GraphError::MissingEdge { .. }))
        ));
    }

    #[test]
    fn add_node_validates_attachments() {
        let g = cycle4();
        assert_eq!(
            apply_delta(&g, &Delta::AddNode { attach: vec![] }),
            Err(DeltaError::EmptyAttachment)
        );
        assert_eq!(
            apply_delta(
                &g,
                &Delta::AddNode {
                    attach: vec![VertexId(1), VertexId(1)]
                }
            ),
            Err(DeltaError::DuplicateAttachment(VertexId(1)))
        );
        let grown = apply_delta(
            &g,
            &Delta::AddNode {
                attach: vec![VertexId(0), VertexId(2)],
            },
        )
        .unwrap();
        assert_eq!(grown.vertex_count(), 5);
        assert!(grown.has_edge(VertexId(4), VertexId(0)));
        assert!(grown.is_connected());
    }

    #[test]
    fn remove_node_keeps_connectivity_or_rejects() {
        let g = cycle4();
        let shrunk = apply_delta(&g, &Delta::RemoveNode(VertexId(3))).unwrap();
        assert_eq!(shrunk.vertex_count(), 3);
        assert!(shrunk.is_connected());
        // A star center cannot depart.
        let star = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(
            apply_delta(&star, &Delta::RemoveNode(VertexId(0))),
            Err(DeltaError::WouldDisconnect)
        );
        let single = Graph::new(1);
        assert_eq!(
            apply_delta(&single, &Delta::RemoveNode(VertexId(0))),
            Err(DeltaError::LastVertex)
        );
    }
}
