//! Seeded churn: the sensor-fleet workload generator.
//!
//! Models the dynamic processes of Huc–Jarry–Leone–Rolim's sensor
//! networks over any resident graph — links appearing and failing, nodes
//! arriving and departing — as a deterministic, seeded stream of
//! [`Delta`]s. The generator is *structure-aware*: every emitted delta
//! is structurally valid for the graph it was drawn against (no
//! duplicate edges, no disconnecting removals), but it is deliberately
//! **not** planarity-aware — a churn stream exercises the rejection
//! paths (pre-flight gate, incremental `NonPlanar`) exactly as a real
//! fleet would.
//!
//! Determinism contract: the sequence of deltas is a pure function of
//! the seed and the evolving graph, so two consumers that apply the same
//! accepted deltas in the same order (the incremental tenant and its
//! full re-embed oracle, or a DST scenario and its replay) draw
//! identical streams. This is what lets churn double as a DST scenario
//! dimension (`crates/dst`).

use planar_graph::{Graph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::delta::{apply_delta, Delta};

/// Weights of the four churn processes, in percent (summing to 100):
/// relink-heavy, as sensor fleets are.
const INSERT_PCT: u32 = 40;
const DELETE_PCT: u32 = 30;
const ARRIVE_PCT: u32 = 15;
// departures take the rest

/// Attempts per draw before falling back to a guaranteed-valid pendant
/// arrival.
const MAX_TRIES: usize = 16;

/// A deterministic churn stream over an evolving graph.
#[derive(Clone, Debug)]
pub struct ChurnGen {
    rng: StdRng,
}

impl ChurnGen {
    /// A stream seeded with `seed`; equal seeds draw equal streams
    /// against equal graph evolutions.
    pub fn new(seed: u64) -> Self {
        ChurnGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws the next delta for the current state of `g`. Always returns
    /// a structurally valid delta (it may still be planarity-breaking).
    pub fn next_delta(&mut self, g: &Graph) -> Delta {
        for _ in 0..MAX_TRIES {
            let candidate = self.draw(g);
            if apply_delta(g, &candidate).is_ok() {
                return candidate;
            }
        }
        self.pendant_arrival(g)
    }

    /// The guaranteed-valid fallback: a pendant arrival whose single
    /// attachment *is* its anchor vertex, drawn seeded and recorded in
    /// the delta itself. A pendant arrival can never create a parallel
    /// edge or disconnect the network, and the explicit anchor is what
    /// the delta planner grafts the fresh leaf under — so the fallback
    /// is deterministic for replays *and* always takes the incremental
    /// `VertexSetChange` path.
    fn pendant_arrival(&mut self, g: &Graph) -> Delta {
        let anchor = self.pick_vertex(g);
        Delta::AddNode {
            attach: vec![anchor],
        }
    }

    fn pick_vertex(&mut self, g: &Graph) -> VertexId {
        VertexId::from_index(self.rng.gen_range(0usize..g.vertex_count()))
    }

    fn draw(&mut self, g: &Graph) -> Delta {
        let n = g.vertex_count();
        let roll = self.rng.gen_range(0u32..100);
        if roll < INSERT_PCT || n < 3 {
            // A new link between two random distinct vertices.
            let u = self.pick_vertex(g);
            let v = self.pick_vertex(g);
            Delta::InsertEdge(u, v)
        } else if roll < INSERT_PCT + DELETE_PCT {
            // A random existing link fails.
            let edges: Vec<_> = g.edges().collect();
            let e = edges[self.rng.gen_range(0usize..edges.len())];
            Delta::DeleteEdge(e.lo(), e.hi())
        } else if roll < INSERT_PCT + DELETE_PCT + ARRIVE_PCT {
            // A node arrives with 1–3 links into the fleet.
            let k = self.rng.gen_range(1usize..=3).min(n);
            let mut attach = Vec::with_capacity(k);
            while attach.len() < k {
                let v = self.pick_vertex(g);
                if !attach.contains(&v) {
                    attach.push(v);
                }
            }
            Delta::AddNode { attach }
        } else {
            // A random node departs.
            Delta::RemoveNode(self.pick_vertex(g))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planar_lib::gen;

    /// Equal seeds draw equal streams over the same evolution.
    #[test]
    fn streams_are_deterministic() {
        let draw = || {
            let mut g = gen::grid(4, 4);
            let mut churn = ChurnGen::new(42);
            let mut deltas = Vec::new();
            for _ in 0..20 {
                let d = churn.next_delta(&g);
                g = apply_delta(&g, &d).unwrap();
                deltas.push(d);
            }
            deltas
        };
        assert_eq!(draw(), draw());
    }

    /// Every drawn delta is valid for the graph it was drawn against,
    /// and the evolution stays connected.
    #[test]
    fn draws_are_always_structurally_valid() {
        for seed in 0..8u64 {
            let mut g = gen::wheel(8);
            let mut churn = ChurnGen::new(seed);
            for _ in 0..30 {
                let d = churn.next_delta(&g);
                g = apply_delta(&g, &d)
                    .unwrap_or_else(|e| panic!("seed {seed}: invalid draw {d}: {e}"));
                assert!(g.is_connected());
            }
        }
    }

    /// The pendant-arrival fallback is seeded, records its anchor in the
    /// delta, and takes the incremental path. A two-vertex fleet forces
    /// it: `n < 3` pins every draw to the insert branch, and the only
    /// edge already exists, so all `MAX_TRIES` draws are invalid.
    #[test]
    fn pendant_fallback_records_a_seeded_anchor() {
        let g = gen::path(2);
        for seed in 0..16u64 {
            let d = ChurnGen::new(seed).next_delta(&g);
            let Delta::AddNode { attach } = &d else {
                panic!("seed {seed}: expected the pendant fallback, got {d}");
            };
            assert_eq!(attach.len(), 1, "a pendant arrival has exactly one anchor");
            assert!(attach[0].index() < g.vertex_count(), "anchor is resident");
            // Deterministic across replays: the oracle side of a DST
            // scenario must draw the identical anchor.
            assert_eq!(d, ChurnGen::new(seed).next_delta(&g));
            apply_delta(&g, &d).expect("the fallback is always valid");
        }
        // The recorded anchor is exactly what the delta planner needs: a
        // pendant arrival grafts incrementally instead of falling back.
        let cfg = planar_embedding::EmbedderConfig::default();
        let (mut resident, _) =
            planar_embedding::ResidentEmbedding::build(g.clone(), &cfg).unwrap();
        let d = ChurnGen::new(3).next_delta(&g);
        let mutated = apply_delta(&g, &d).unwrap();
        let report = resident.reembed(mutated).unwrap();
        assert_eq!(
            report.taken(),
            planar_embedding::DeltaClass::VertexSetChange,
            "the anchored fallback must re-embed incrementally"
        );
    }

    /// Different seeds explore different streams (sanity, not a law).
    #[test]
    fn seeds_diversify() {
        let g = gen::grid(4, 4);
        let a = ChurnGen::new(1).next_delta(&g);
        let streams: Vec<_> = (1..20u64)
            .map(|s| ChurnGen::new(s).next_delta(&g))
            .collect();
        assert!(streams.iter().any(|d| *d != a));
    }
}
