//! Per-class conformance: for every [`DeltaClass`], on both kernels,
//! fault-free and against a chaos+reliable from-scratch embed, the
//! incremental path must be bit-identical to the oracle — with the
//! simulator's audit sink armed throughout.
//!
//! The suite constructs one *guaranteed* delta per class from the
//! deterministic BFS tree of the tenant graph (the same tree the kernel
//! elects: max-id root, min-id parent rule), so each class's incremental
//! machinery — merge-only re-runs, tree splices, leaf grafts/prunes with
//! renumbering, and the full fallback — is pinned individually rather
//! than hoped-for out of a churn stream. `OracleMode::Always` diffs every
//! apply against a fault-free from-scratch embed; the chaos leg
//! additionally re-embeds the mutated graph under lossy links with
//! reliable delivery and requires the surviving runs to agree with the
//! resident rotation (degrading is legitimate, diverging is not).

use congest_sim::{AuditSink, FaultPlan, SimConfig, TraceHandle};
use planar_embedding::setup::run_setup;
use planar_embedding::tree::GlobalTree;
use planar_embedding::{
    embed_distributed, DeltaClass, EmbedError, EmbedderConfig, Kernel, ReliableConfig,
};
use planar_graph::{Graph, VertexId};
use planar_lib::gen;
use planar_service::{Delta, DeltaOutcome, OracleMode, ServiceConfig, ServiceState};

/// The deterministic BFS tree the driver's setup phase elects for `g` —
/// what the resident embedding pins as its sticky root.
fn tree_of(g: &Graph) -> GlobalTree {
    run_setup(g, &SimConfig::default()).unwrap().0.tree
}

/// One guaranteed delta of each class against the tenant graph, derived
/// from the deterministic tree.
fn class_cases(g: &Graph) -> Vec<(DeltaClass, &'static str, Delta)> {
    let tree = tree_of(g);
    let is_tree_edge = |u: VertexId, v: VertexId| {
        tree.parent[u.index()] == Some(v) || tree.parent[v.index()] == Some(u)
    };
    let mut cases = Vec::new();

    // TreePreserving: delete a non-tree edge — every BFS distance and
    // parent choice survives.
    let chord = g
        .edges()
        .find(|e| !is_tree_edge(e.lo(), e.hi()))
        .expect("fixture must have a non-tree edge");
    cases.push((
        DeltaClass::TreePreserving,
        "non-tree-edge delete",
        Delta::DeleteEdge(chord.lo(), chord.hi()),
    ));

    // TreeRepairable: delete a tree edge whose child endpoint keeps
    // another strictly-shallower neighbor — the planner re-hangs the
    // subtree under it.
    let repairable = g
        .edges()
        .find(|e| {
            let c = if tree.parent[e.lo().index()] == Some(e.hi()) {
                e.lo()
            } else if tree.parent[e.hi().index()] == Some(e.lo()) {
                e.hi()
            } else {
                return false;
            };
            g.neighbors(c).iter().any(|&w| {
                tree.depth[w.index()] + 1 == tree.depth[c.index()]
                    && Some(w) != tree.parent[c.index()]
            })
        })
        .expect("fixture must have a repairable tree edge");
    cases.push((
        DeltaClass::TreeRepairable,
        "tree-edge delete with alternative parent",
        Delta::DeleteEdge(repairable.lo(), repairable.hi()),
    ));

    // VertexSetChange, arrival flavor: a pendant node grafts as a fresh
    // leaf under its anchor.
    cases.push((
        DeltaClass::VertexSetChange,
        "pendant arrival",
        Delta::AddNode {
            attach: vec![VertexId(0)],
        },
    ));

    // VertexSetChange, departure flavor: a tree leaf prunes with a
    // monotone renumbering of everything above it.
    let leaf = g
        .vertices()
        .find(|&v| {
            tree.children[v.index()].is_empty() && v != tree.root && {
                let mut m = g.clone();
                m.remove_vertex(v).unwrap();
                m.is_connected()
            }
        })
        .expect("fixture must have a removable tree leaf");
    cases.push((
        DeltaClass::VertexSetChange,
        "leaf departure",
        Delta::RemoveNode(leaf),
    ));

    // Fallback: an insert spanning two or more BFS levels shortens
    // distances and cascades — the planner must hand it to the full path.
    let mut fallback = None;
    'outer: for u in g.vertices() {
        for v in g.vertices() {
            if u < v
                && !g.has_edge(u, v)
                && tree.depth[u.index()].abs_diff(tree.depth[v.index()]) >= 2
            {
                let mut m = g.clone();
                m.add_edge(u, v).unwrap();
                if planar_lib::embed(&m).is_ok() {
                    fallback = Some(Delta::InsertEdge(u, v));
                    break 'outer;
                }
            }
        }
    }
    cases.push((
        DeltaClass::Fallback,
        "distance-shortening insert",
        fallback.expect("fixture must have a planar long-range insert"),
    ));
    cases
}

fn audited_service(kernel: Kernel, audit: &std::sync::Arc<AuditSink>) -> ServiceState {
    let mut cfg = ServiceConfig {
        kernel,
        certify: true,
        oracle: OracleMode::Always,
        ..ServiceConfig::default()
    };
    cfg.sim.trace = TraceHandle::to(audit.clone());
    ServiceState::new(cfg)
}

/// A lossy-links + reliable-delivery configuration for the chaos leg's
/// from-scratch re-embeds.
fn chaos_cfg(kernel: Kernel) -> EmbedderConfig {
    EmbedderConfig {
        sim: SimConfig {
            faults: FaultPlan::uniform(23, 0.05, 0.02, 0.05, 2),
            ..SimConfig::default()
        },
        reliability: Some(ReliableConfig::default()),
        certify: true,
        kernel,
        ..EmbedderConfig::default()
    }
}

/// Runs every class case on `kernel`, one fresh tenant per case, and
/// checks class, bit-identity, and (optionally) the chaos+reliable
/// from-scratch agreement.
fn run_cases(kernel: Kernel, chaos: bool) {
    let g = gen::grid(6, 6);
    for (expected, name, delta) in class_cases(&g) {
        let audit = AuditSink::new();
        let mut svc = audited_service(kernel, &audit);
        let id = svc.create_tenant(g.clone()).unwrap();
        let outcome = svc
            .apply(id, delta.clone())
            .unwrap_or_else(|e| panic!("{kernel:?}/{name}: {e}"));
        let DeltaOutcome::Applied { report, .. } = &outcome else {
            panic!("{kernel:?}/{name}: expected Applied, got {outcome:?}");
        };
        assert_eq!(
            report.taken(),
            expected,
            "{kernel:?}/{name}: wrong class taken ({:?})",
            report.path
        );
        let tenant = svc.tenant(id).unwrap();
        let record = tenant.records().last().unwrap();
        assert_eq!(record.class, Some(expected), "{kernel:?}/{name}");
        assert_eq!(
            record.planned, record.class,
            "{kernel:?}/{name}: planner predicted a class it did not take"
        );
        if expected.is_incremental() {
            assert!(record.dirty_region > 0, "{kernel:?}/{name}");
        } else {
            assert_eq!(record.dirty_region, 0, "{kernel:?}/{name}");
        }
        assert!(
            record.diverged.is_none(),
            "{kernel:?}/{name}: {}",
            record.diverged.as_deref().unwrap()
        );
        assert_eq!(svc.divergences(), 0);
        assert!(
            tenant.certification().is_some_and(|c| c.accepted()),
            "{kernel:?}/{name}: resident certification not accepted"
        );
        assert!(audit.ok(), "{kernel:?}/{name}: kernel audit violations");

        if chaos {
            // The chaos leg: a from-scratch embed of the mutated graph
            // under lossy links + reliable delivery must, when it
            // survives, agree with the resident bit for bit. (Residents
            // themselves are fault-free by contract; chaos exercises the
            // oracle side of the bit-identity equation.)
            match embed_distributed(tenant.graph(), &chaos_cfg(kernel)) {
                Ok(full) => {
                    assert_eq!(
                        tenant.rotation(),
                        &full.rotation,
                        "{kernel:?}/{name}: chaos+reliable re-embed diverged"
                    );
                    let cert = full.certification.expect("certify was requested");
                    assert!(cert.accepted(), "{kernel:?}/{name}");
                }
                Err(EmbedError::Degraded { .. }) => {
                    // Losing a phase to chaos is legitimate; only
                    // divergence would be a bug.
                }
                Err(e) => panic!("{kernel:?}/{name}: chaos re-embed failed: {e}"),
            }
        }
    }
}

#[test]
fn every_class_conforms_on_the_fast_kernel() {
    run_cases(Kernel::Fast, false);
}

#[test]
fn every_class_conforms_on_the_reference_kernel() {
    run_cases(Kernel::Reference, false);
}

#[test]
fn every_class_conforms_under_chaos_with_reliable_delivery_fast() {
    run_cases(Kernel::Fast, true);
}

#[test]
fn every_class_conforms_under_chaos_with_reliable_delivery_reference() {
    run_cases(Kernel::Reference, true);
}

/// The regression the delta planner exists for: before it, *every* edge
/// insert fell back to a full re-embed (the old incremental path only
/// survived deltas that reproduced the whole tree, and inserts were
/// pre-classified as tree-changing). A same-level chord must now take
/// the incremental path.
#[test]
fn inserts_no_longer_take_the_full_fallback() {
    let g = gen::grid(6, 6);
    let tree = tree_of(&g);
    let mut pick = None;
    'outer: for u in g.vertices() {
        for v in g.vertices() {
            if u < v && !g.has_edge(u, v) && tree.depth[u.index()] == tree.depth[v.index()] {
                let mut m = g.clone();
                m.add_edge(u, v).unwrap();
                if planar_lib::embed(&m).is_ok() {
                    pick = Some((u, v));
                    break 'outer;
                }
            }
        }
    }
    let (u, v) = pick.expect("a grid has a planar same-level chord");
    let audit = AuditSink::new();
    let mut svc = audited_service(Kernel::Fast, &audit);
    let id = svc.create_tenant(g).unwrap();
    let outcome = svc.apply(id, Delta::InsertEdge(u, v)).unwrap();
    let DeltaOutcome::Applied { report, .. } = &outcome else {
        panic!("expected Applied, got {outcome:?}");
    };
    assert!(
        report.is_incremental(),
        "inserts must no longer be a guaranteed full fallback: {:?}",
        report.path
    );
    assert_eq!(report.taken(), DeltaClass::TreePreserving);
    assert_eq!(svc.divergences(), 0);
    assert!(audit.ok());
}

/// Arrivals and departures — the vertex-set deltas that used to be an
/// unconditional `FullCause::VertexSetChanged` — now re-embed
/// incrementally and stay bit-identical through a whole add/remove cycle.
#[test]
fn vertex_set_deltas_no_longer_take_the_full_fallback() {
    let g = gen::wheel(12);
    let audit = AuditSink::new();
    let mut svc = audited_service(Kernel::Fast, &audit);
    let id = svc.create_tenant(g.clone()).unwrap();
    let out = svc
        .apply(
            id,
            Delta::AddNode {
                attach: vec![VertexId(2)],
            },
        )
        .unwrap();
    let DeltaOutcome::Applied { report, .. } = &out else {
        panic!("expected Applied, got {out:?}");
    };
    assert_eq!(
        report.taken(),
        DeltaClass::VertexSetChange,
        "{:?}",
        report.path
    );
    // The arrived pendant is a tree leaf; its departure prunes back.
    let fresh = VertexId::from_index(g.vertex_count());
    let out = svc.apply(id, Delta::RemoveNode(fresh)).unwrap();
    let DeltaOutcome::Applied { report, .. } = &out else {
        panic!("expected Applied, got {out:?}");
    };
    assert_eq!(
        report.taken(),
        DeltaClass::VertexSetChange,
        "{:?}",
        report.path
    );
    assert_eq!(svc.tenant(id).unwrap().graph(), &g);
    assert_eq!(svc.divergences(), 0);
    assert!(audit.ok());
}
