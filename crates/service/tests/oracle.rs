//! The bit-identity property suite: for every generator family, seeded
//! churn sequence, and kernel, the service's incremental path must match
//! the full re-embed oracle *exactly* — rotation system, certification
//! verdict, and planarity outcome — with the simulator's audit sink
//! armed so any kernel protocol violation fails the run too.
//!
//! This is the contract the whole service rests on ("incremental" may
//! never mean "approximate"); [`OracleMode::Always`] performs the diff
//! on every delta, and `ServiceState::divergences()` must stay 0.

use congest_sim::{AuditSink, TraceHandle};
use planar_embedding::Kernel;
use planar_lib::gen;
use planar_service::{
    ChurnGen, Delta, DeltaOutcome, OracleMode, ServiceConfig, ServiceState, TenantId,
};

/// Deltas per (family, kernel, seed) cell. Small on purpose — the suite
/// covers 15 families × 2 kernels × 2 seeds; depth is the soak's job
/// (`harness service`).
const DELTAS: usize = 5;
const SEEDS: [u64; 2] = [11, 202];

fn audited_service(kernel: Kernel, audit: &std::sync::Arc<AuditSink>) -> ServiceState {
    let mut cfg = ServiceConfig {
        kernel,
        certify: true,
        oracle: OracleMode::Always,
        ..ServiceConfig::default()
    };
    cfg.sim.trace = TraceHandle::to(audit.clone());
    ServiceState::new(cfg)
}

fn churn_tenant(svc: &mut ServiceState, id: TenantId, seed: u64, family: &str, kernel: Kernel) {
    let mut churn = ChurnGen::new(seed);
    for step in 0..DELTAS {
        let delta = churn.next_delta(svc.tenant(id).unwrap().graph());
        let shown = delta.clone();
        let outcome = svc
            .apply(id, delta)
            .unwrap_or_else(|e| panic!("{family}/{kernel:?}/seed {seed} step {step}: {e}"));
        assert!(
            !matches!(outcome, DeltaOutcome::RejectedInvalid { .. }),
            "{family}/{kernel:?}/seed {seed} step {step}: churn drew invalid delta {shown}"
        );
        let tenant = svc.tenant(id).unwrap();
        if let Some(record) = tenant.records().last() {
            assert!(
                record.diverged.is_none(),
                "{family}/{kernel:?}/seed {seed} step {step} ({shown}): {}",
                record.diverged.as_deref().unwrap()
            );
        }
        assert!(
            tenant.rotation().is_planar_embedding(),
            "{family}/{kernel:?}/seed {seed} step {step}: resident rotation not planar"
        );
        assert!(
            tenant.certification().is_some_and(|c| c.accepted()),
            "{family}/{kernel:?}/seed {seed} step {step}: resident certification not accepted"
        );
    }
}

/// The headline property: every family × seed × kernel, incremental
/// re-embedding under churn is bit-identical to the full oracle, and
/// the kernel audit stays clean.
#[test]
fn churned_families_match_full_oracle_on_both_kernels() {
    for kernel in [Kernel::Fast, Kernel::Reference] {
        let audit = AuditSink::new();
        let mut svc = audited_service(kernel, &audit);
        let mut tenants = Vec::new();
        for family in gen::FAMILIES {
            let n = family.min_n.max(10);
            for seed in SEEDS {
                let g = (family.build)(n, seed);
                let id = svc
                    .create_tenant_labeled(g, Some(family.name))
                    .unwrap_or_else(|e| {
                        panic!("{}/{kernel:?}: admission failed: {e}", family.name)
                    });
                tenants.push((id, family.name, seed));
            }
        }
        for (id, family, seed) in tenants {
            churn_tenant(&mut svc, id, seed, family, kernel);
        }
        assert_eq!(
            svc.divergences(),
            0,
            "{kernel:?}: incremental re-embedding diverged from the full oracle"
        );
        let report = audit.report();
        assert!(
            report.mismatches.is_empty(),
            "{kernel:?}: kernel audit violations: {:?}",
            report.mismatches
        );
        assert!(audit.ok());
    }
}

/// The incremental path is genuinely exercised (not 100% fallback): a
/// non-tree edge deletion on a grid takes the subtree-recompute path and
/// still matches the oracle.
#[test]
fn incremental_path_is_taken_and_matches() {
    let audit = AuditSink::new();
    let mut svc = audited_service(Kernel::Fast, &audit);
    let g = gen::grid(8, 8);
    let id = svc.create_tenant(g.clone()).unwrap();
    // Any chord of the grid's BFS tree: deleting it preserves all BFS
    // distances, so the resident tree is reproduced and the incremental
    // path applies.
    let tenant = svc.tenant(id).unwrap();
    let victim = g
        .edges()
        .find(|e| !tenant.is_tree_edge(e.lo(), e.hi()))
        .expect("a grid has non-tree edges");
    let outcome = svc
        .apply(id, Delta::DeleteEdge(victim.lo(), victim.hi()))
        .unwrap();
    match outcome {
        DeltaOutcome::Applied { report, .. } => {
            assert!(report.is_incremental(), "expected the incremental path");
        }
        other => panic!("expected Applied, got {other:?}"),
    }
    assert_eq!(svc.divergences(), 0);
    assert!(audit.ok());
}
