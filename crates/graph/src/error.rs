use std::error::Error;
use std::fmt;

use crate::VertexId;

/// Errors produced by graph construction and validation.
///
/// # Example
///
/// ```
/// use planar_graph::{Graph, GraphError};
///
/// let err = Graph::from_edges(2, [(0, 0)]).unwrap_err();
/// assert!(matches!(err, GraphError::SelfLoop { .. }));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge `{v, v}` was supplied; the paper only considers simple graphs.
    SelfLoop {
        /// The offending vertex.
        vertex: VertexId,
    },
    /// The same undirected edge was supplied twice.
    ParallelEdge {
        /// First endpoint of the duplicated edge.
        u: VertexId,
        /// Second endpoint of the duplicated edge.
        v: VertexId,
    },
    /// An endpoint is `>= n` for an `n`-vertex graph.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: VertexId,
        /// Number of vertices in the graph.
        n: usize,
    },
    /// An edge removal referenced an edge that is not present.
    MissingEdge {
        /// First endpoint of the missing edge.
        u: VertexId,
        /// Second endpoint of the missing edge.
        v: VertexId,
    },
    /// An operation that requires a connected graph was given a disconnected one.
    Disconnected,
    /// A rotation system was inconsistent with the underlying graph.
    InvalidRotation {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::SelfLoop { vertex } => {
                write!(f, "self-loop at {vertex} is not allowed in a simple graph")
            }
            GraphError::ParallelEdge { u, v } => {
                write!(
                    f,
                    "parallel edge {{{u}, {v}}} is not allowed in a simple graph"
                )
            }
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex {vertex} out of range for a graph on {n} vertices"
                )
            }
            GraphError::MissingEdge { u, v } => {
                write!(f, "edge {{{u}, {v}}} is not present in the graph")
            }
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::InvalidRotation { reason } => {
                write!(f, "invalid rotation system: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_period() {
        let e = GraphError::SelfLoop {
            vertex: VertexId(3),
        };
        let s = e.to_string();
        assert!(s.starts_with("self-loop"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
