//! Biconnected-component (block) decomposition, cut vertices and the
//! block–cut tree.
//!
//! Section 3 of the paper characterizes the *interface* of a partial
//! embedding through exactly this decomposition (Observation 3.2): each
//! biconnected component has a fixed boundary order up to a flip, and blocks
//! may be permuted freely around their shared cut vertices. The distributed
//! representation in the paper names each block by its smallest edge ID;
//! [`BiconnectedDecomposition::block_id`] reproduces that convention.

use std::collections::HashMap;

use crate::{EdgeId, Graph, VertexId};

/// The biconnected-component decomposition of a graph.
///
/// Every edge belongs to exactly one block; a vertex belongs to every block
/// one of its edges belongs to, so cut vertices are exactly the vertices in
/// two or more blocks (isolated vertices belong to no block).
///
/// # Example
///
/// ```
/// use planar_graph::{Graph, VertexId};
/// use planar_graph::biconnected::BiconnectedDecomposition;
///
/// # fn main() -> Result<(), planar_graph::GraphError> {
/// // Two triangles sharing vertex 2 ("bow-tie"): 2 blocks, 1 cut vertex.
/// let g = Graph::from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])?;
/// let bc = BiconnectedDecomposition::compute(&g);
/// assert_eq!(bc.block_count(), 2);
/// assert!(bc.is_cut_vertex(VertexId(2)));
/// assert!(!bc.is_cut_vertex(VertexId(0)));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct BiconnectedDecomposition {
    blocks: Vec<Vec<EdgeId>>,
    block_of_edge: HashMap<EdgeId, usize>,
    blocks_of_vertex: Vec<Vec<usize>>,
    is_cut: Vec<bool>,
}

impl BiconnectedDecomposition {
    /// Runs Tarjan's linear-time block decomposition (iteratively, so deep
    /// graphs cannot overflow the call stack).
    pub fn compute(g: &Graph) -> Self {
        let n = g.vertex_count();
        let mut disc = vec![0u32; n]; // 0 = unvisited, otherwise disc+1
        let mut low = vec![0u32; n];
        let mut edge_stack: Vec<EdgeId> = Vec::new();
        let mut blocks: Vec<Vec<EdgeId>> = Vec::new();
        let mut timer: u32 = 0;

        // Frame: (vertex, parent, next neighbor index, number of DFS children).
        struct Frame {
            v: VertexId,
            parent: Option<VertexId>,
            next: usize,
            children: usize,
        }

        for root in g.vertices() {
            if disc[root.index()] != 0 {
                continue;
            }
            timer += 1;
            disc[root.index()] = timer;
            low[root.index()] = timer;
            let mut stack = vec![Frame {
                v: root,
                parent: None,
                next: 0,
                children: 0,
            }];
            while let Some(frame) = stack.last_mut() {
                let v = frame.v;
                if frame.next < g.degree(v) {
                    let w = g.neighbors(v)[frame.next];
                    frame.next += 1;
                    if disc[w.index()] == 0 {
                        frame.children += 1;
                        edge_stack.push(EdgeId::new(v, w));
                        timer += 1;
                        disc[w.index()] = timer;
                        low[w.index()] = timer;
                        stack.push(Frame {
                            v: w,
                            parent: Some(v),
                            next: 0,
                            children: 0,
                        });
                    } else if Some(w) != frame.parent && disc[w.index()] < disc[v.index()] {
                        // Back edge to a strict ancestor.
                        edge_stack.push(EdgeId::new(v, w));
                        low[v.index()] = low[v.index()].min(disc[w.index()]);
                    }
                } else {
                    // Finished v: propagate low to parent; maybe close a block.
                    let parent = frame.parent;
                    stack.pop();
                    if let Some(p) = parent {
                        low[p.index()] = low[p.index()].min(low[v.index()]);
                        if low[v.index()] >= disc[p.index()] {
                            // The block containing tree edge (p, v) is
                            // complete: pop the edge stack down to it.
                            let cut = EdgeId::new(p, v);
                            let mut block = Vec::new();
                            while let Some(&top) = edge_stack.last() {
                                edge_stack.pop();
                                block.push(top);
                                if top == cut {
                                    break;
                                }
                            }
                            blocks.push(block);
                        }
                    }
                }
            }
        }

        let mut block_of_edge = HashMap::new();
        let mut blocks_of_vertex: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, block) in blocks.iter().enumerate() {
            for &e in block {
                block_of_edge.insert(e, i);
                for v in [e.lo(), e.hi()] {
                    if blocks_of_vertex[v.index()].last() != Some(&i)
                        && !blocks_of_vertex[v.index()].contains(&i)
                    {
                        blocks_of_vertex[v.index()].push(i);
                    }
                }
            }
        }
        // A vertex is a cut vertex iff it lies in >= 2 blocks (the paper's
        // own criterion in Section 3).
        let is_cut: Vec<bool> = (0..n).map(|v| blocks_of_vertex[v].len() >= 2).collect();

        BiconnectedDecomposition {
            blocks,
            block_of_edge,
            blocks_of_vertex,
            is_cut,
        }
    }

    /// Number of blocks (biconnected components).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The edges of block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b >= block_count()`.
    pub fn block_edges(&self, b: usize) -> &[EdgeId] {
        &self.blocks[b]
    }

    /// The distinct vertices of block `b` (in ascending order).
    pub fn block_vertices(&self, b: usize) -> Vec<VertexId> {
        let mut vs: Vec<VertexId> = self.blocks[b]
            .iter()
            .flat_map(|e| [e.lo(), e.hi()])
            .collect();
        vs.sort();
        vs.dedup();
        vs
    }

    /// The block containing edge `e`, if `e` exists in the graph.
    pub fn block_of_edge(&self, e: EdgeId) -> Option<usize> {
        self.block_of_edge.get(&e).copied()
    }

    /// Indices of the blocks containing vertex `v` (empty for isolated
    /// vertices).
    pub fn blocks_of_vertex(&self, v: VertexId) -> &[usize] {
        &self.blocks_of_vertex[v.index()]
    }

    /// Returns `true` if `v` is a cut vertex (belongs to two or more blocks).
    pub fn is_cut_vertex(&self, v: VertexId) -> bool {
        self.is_cut[v.index()]
    }

    /// All cut vertices in ascending order.
    pub fn cut_vertices(&self) -> Vec<VertexId> {
        (0..self.is_cut.len())
            .filter(|&v| self.is_cut[v])
            .map(VertexId::from_index)
            .collect()
    }

    /// The paper's block identifier: the smallest [`EdgeId`] in the block
    /// (footnote 5 / "Distributed Representation" in Section 3).
    pub fn block_id(&self, b: usize) -> EdgeId {
        *self.blocks[b].iter().min().expect("blocks are never empty")
    }

    /// The block–cut tree: one node per block and per cut vertex, with an
    /// edge whenever a cut vertex lies in a block.
    ///
    /// Returns `(tree, block_node, cut_node)` where `block_node[b]` is the
    /// tree vertex of block `b` and `cut_node` maps each cut vertex to its
    /// tree vertex. For a connected input graph the result is a tree.
    pub fn block_cut_tree(&self) -> (Graph, Vec<VertexId>, HashMap<VertexId, VertexId>) {
        let cuts = self.cut_vertices();
        let total = self.blocks.len() + cuts.len();
        let mut tree = Graph::new(total);
        let block_node: Vec<VertexId> = (0..self.blocks.len()).map(VertexId::from_index).collect();
        let mut cut_node = HashMap::new();
        for (i, &c) in cuts.iter().enumerate() {
            cut_node.insert(c, VertexId::from_index(self.blocks.len() + i));
        }
        for (i, &c) in cuts.iter().enumerate() {
            let cn = VertexId::from_index(self.blocks.len() + i);
            for &b in self.blocks_of_vertex(c) {
                tree.add_edge(block_node[b], cn)
                    .expect("block-cut incidences are unique");
            }
        }
        (tree, block_node, cut_node)
    }

    /// Returns `true` if the whole graph is biconnected: connected, at least
    /// one edge, and a single block containing every vertex.
    pub fn is_biconnected(&self, g: &Graph) -> bool {
        g.is_connected()
            && self.blocks.len() == 1
            && self.block_vertices(0).len() == g.vertex_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn single_edge_is_one_block() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let bc = BiconnectedDecomposition::compute(&g);
        assert_eq!(bc.block_count(), 1);
        assert!(bc.cut_vertices().is_empty());
        assert!(bc.is_biconnected(&g));
    }

    #[test]
    fn path_every_edge_is_a_block() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let bc = BiconnectedDecomposition::compute(&g);
        assert_eq!(bc.block_count(), 3);
        assert_eq!(bc.cut_vertices(), vec![VertexId(1), VertexId(2)]);
        assert!(!bc.is_biconnected(&g));
    }

    #[test]
    fn cycle_is_one_block() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let bc = BiconnectedDecomposition::compute(&g);
        assert_eq!(bc.block_count(), 1);
        assert!(bc.cut_vertices().is_empty());
        assert!(bc.is_biconnected(&g));
    }

    #[test]
    fn bowtie_blocks_and_cut() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]).unwrap();
        let bc = BiconnectedDecomposition::compute(&g);
        assert_eq!(bc.block_count(), 2);
        assert_eq!(bc.cut_vertices(), vec![VertexId(2)]);
        assert_eq!(bc.blocks_of_vertex(VertexId(2)).len(), 2);
        assert_eq!(bc.blocks_of_vertex(VertexId(0)).len(), 1);
        // Every block here is a triangle.
        for b in 0..2 {
            assert_eq!(bc.block_edges(b).len(), 3);
            assert_eq!(bc.block_vertices(b).len(), 3);
        }
    }

    #[test]
    fn block_ids_are_min_edge_ids() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]).unwrap();
        let bc = BiconnectedDecomposition::compute(&g);
        let mut ids: Vec<EdgeId> = (0..bc.block_count()).map(|b| bc.block_id(b)).collect();
        ids.sort();
        assert_eq!(ids[0], EdgeId::new(VertexId(0), VertexId(1)));
        assert_eq!(ids[1], EdgeId::new(VertexId(2), VertexId(3)));
    }

    #[test]
    fn every_edge_in_exactly_one_block() {
        // Random-ish mixed graph: triangle + pendant path + extra block.
        let g = Graph::from_edges(
            8,
            [
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 3),
                (6, 7),
            ],
        )
        .unwrap();
        let bc = BiconnectedDecomposition::compute(&g);
        let mut counted = 0;
        for b in 0..bc.block_count() {
            counted += bc.block_edges(b).len();
            for &e in bc.block_edges(b) {
                assert_eq!(bc.block_of_edge(e), Some(b));
            }
        }
        assert_eq!(counted, g.edge_count());
    }

    #[test]
    fn block_cut_tree_is_tree() {
        let g = Graph::from_edges(
            8,
            [
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 3),
                (6, 7),
            ],
        )
        .unwrap();
        let bc = BiconnectedDecomposition::compute(&g);
        let (tree, _, _) = bc.block_cut_tree();
        assert!(tree.is_connected());
        assert_eq!(tree.edge_count(), tree.vertex_count() - 1);
    }

    #[test]
    fn disconnected_graph_blocks_per_component() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5)]).unwrap();
        let bc = BiconnectedDecomposition::compute(&g);
        assert_eq!(bc.block_count(), 3); // triangle + two path edges
    }

    #[test]
    fn k4_is_biconnected() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        let bc = BiconnectedDecomposition::compute(&g);
        assert!(bc.is_biconnected(&g));
        assert!(bc.cut_vertices().is_empty());
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        let n = 200_000u32;
        let g = Graph::from_edges(n as usize, (0..n - 1).map(|i| (i, i + 1))).unwrap();
        let bc = BiconnectedDecomposition::compute(&g);
        assert_eq!(bc.block_count(), n as usize - 1);
    }
}
