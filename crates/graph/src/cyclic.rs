//! Utilities for cyclic sequences (circular orders).
//!
//! The output of the paper's algorithm is, per vertex, a *cyclic* order of
//! incident edges; interfaces of parts are cyclic orders of half-embedded
//! edges. Two cyclic orders are the same if one is a rotation of the other,
//! and represent mirror-image embeddings if one is a rotation of the other's
//! reversal. These helpers implement those comparisons and the insertion
//! operations merges perform.

/// Returns `true` if `b` is a rotation of `a` (same cyclic sequence).
///
/// # Example
///
/// ```
/// use planar_graph::cyclic::cyclic_eq;
///
/// assert!(cyclic_eq(&[1, 2, 3], &[3, 1, 2]));
/// assert!(!cyclic_eq(&[1, 2, 3], &[1, 3, 2]));
/// assert!(cyclic_eq::<u8>(&[], &[]));
/// ```
pub fn cyclic_eq<T: PartialEq>(a: &[T], b: &[T]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    if a.is_empty() {
        return true;
    }
    (0..a.len()).any(|shift| (0..a.len()).all(|i| a[i] == b[(i + shift) % b.len()]))
}

/// Returns `true` if `b` equals `a` as a cyclic sequence up to reflection
/// (reversal). Two rotation systems that differ by a global reflection
/// describe the same planar drawing viewed from the other side of the plane.
///
/// # Example
///
/// ```
/// use planar_graph::cyclic::cyclic_eq_reflect;
///
/// assert!(cyclic_eq_reflect(&[1, 2, 3, 4], &[2, 1, 4, 3]));
/// ```
pub fn cyclic_eq_reflect<T: PartialEq + Clone>(a: &[T], b: &[T]) -> bool {
    if cyclic_eq(a, b) {
        return true;
    }
    let mut rev: Vec<T> = b.to_vec();
    rev.reverse();
    cyclic_eq(a, &rev)
}

/// Canonical representative of a cyclic sequence: the lexicographically
/// smallest rotation. Useful for hashing and comparing interfaces in tests.
///
/// # Example
///
/// ```
/// use planar_graph::cyclic::canonical_rotation;
///
/// assert_eq!(canonical_rotation(&[3, 1, 2]), vec![1, 2, 3]);
/// ```
pub fn canonical_rotation<T: Ord + Clone>(a: &[T]) -> Vec<T> {
    if a.is_empty() {
        return Vec::new();
    }
    let mut best: Option<Vec<T>> = None;
    for shift in 0..a.len() {
        let rot: Vec<T> = (0..a.len())
            .map(|i| a[(i + shift) % a.len()].clone())
            .collect();
        if best.as_ref().is_none_or(|b| rot < *b) {
            best = Some(rot);
        }
    }
    best.unwrap()
}

/// Canonical representative up to rotation *and* reflection.
pub fn canonical_rotation_reflect<T: Ord + Clone>(a: &[T]) -> Vec<T> {
    let fwd = canonical_rotation(a);
    let mut rev: Vec<T> = a.to_vec();
    rev.reverse();
    let bwd = canonical_rotation(&rev);
    fwd.min(bwd)
}

/// Inserts `item` immediately after the (first) occurrence of `anchor` in the
/// cyclic sequence `seq`.
///
/// This is the elementary operation merges use: "place the new edge right
/// after edge `x` in the clockwise order around `v`".
///
/// # Panics
///
/// Panics if `anchor` is not present.
pub fn insert_after<T: PartialEq>(seq: &mut Vec<T>, anchor: &T, item: T) {
    let pos = seq
        .iter()
        .position(|x| x == anchor)
        .expect("anchor not present in cyclic sequence");
    seq.insert(pos + 1, item);
}

/// Inserts `item` immediately before the (first) occurrence of `anchor`.
///
/// # Panics
///
/// Panics if `anchor` is not present.
pub fn insert_before<T: PartialEq>(seq: &mut Vec<T>, anchor: &T, item: T) {
    let pos = seq
        .iter()
        .position(|x| x == anchor)
        .expect("anchor not present in cyclic sequence");
    seq.insert(pos, item);
}

/// Returns the successor of the element at the (first) position of `x` in the
/// cyclic sequence, or `None` if `x` is absent.
pub fn successor<'a, T: PartialEq>(seq: &'a [T], x: &T) -> Option<&'a T> {
    let pos = seq.iter().position(|y| y == x)?;
    Some(&seq[(pos + 1) % seq.len()])
}

/// Returns the predecessor of `x` in the cyclic sequence, or `None` if absent.
pub fn predecessor<'a, T: PartialEq>(seq: &'a [T], x: &T) -> Option<&'a T> {
    let pos = seq.iter().position(|y| y == x)?;
    Some(&seq[(pos + seq.len() - 1) % seq.len()])
}

/// Rotates `seq` in place so it starts at the first occurrence of `x`.
///
/// # Panics
///
/// Panics if `x` is not present.
pub fn rotate_to_start<T: PartialEq>(seq: &mut [T], x: &T) {
    let pos = seq
        .iter()
        .position(|y| y == x)
        .expect("element not present");
    seq.rotate_left(pos);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_handles_all_rotations() {
        let a = [1, 2, 3, 4];
        for shift in 0..4 {
            let mut b = a.to_vec();
            b.rotate_left(shift);
            assert!(cyclic_eq(&a, &b), "shift {shift}");
        }
        assert!(!cyclic_eq(&a, &[1, 2, 4, 3]));
        assert!(!cyclic_eq(&a, &[1, 2, 3]));
    }

    #[test]
    fn reflect_eq() {
        assert!(cyclic_eq_reflect(&[1, 2, 3], &[3, 2, 1]));
        assert!(cyclic_eq_reflect(&[1, 2, 3, 4], &[3, 2, 1, 4]));
        assert!(!cyclic_eq_reflect(&[1, 2, 3, 4, 5], &[1, 3, 2, 4, 5]));
    }

    #[test]
    fn canonical_forms() {
        assert_eq!(canonical_rotation(&[2, 3, 1]), vec![1, 2, 3]);
        assert_eq!(
            canonical_rotation_reflect(&[1, 3, 2]),
            canonical_rotation_reflect(&[1, 2, 3])
        );
        // A sequence and its reflection share one canonical form.
        let a = [5, 1, 4, 2];
        let mut r = a.to_vec();
        r.reverse();
        assert_eq!(
            canonical_rotation_reflect(&a),
            canonical_rotation_reflect(&r)
        );
    }

    #[test]
    fn insertion_ops() {
        let mut s = vec![1, 2, 3];
        insert_after(&mut s, &2, 9);
        assert_eq!(s, vec![1, 2, 9, 3]);
        insert_before(&mut s, &1, 8);
        assert_eq!(s, vec![8, 1, 2, 9, 3]);
    }

    #[test]
    fn successor_predecessor_wrap() {
        let s = [1, 2, 3];
        assert_eq!(successor(&s, &3), Some(&1));
        assert_eq!(predecessor(&s, &1), Some(&3));
        assert_eq!(successor(&s, &7), None);
    }

    #[test]
    fn rotate_to_start_works() {
        let mut s = vec![1, 2, 3, 4];
        rotate_to_start(&mut s, &3);
        assert_eq!(s, vec![3, 4, 1, 2]);
    }
}
