//! Rotation systems (combinatorial embeddings), face tracing, and the
//! Euler-genus planarity verifier.
//!
//! By Edmonds' theorem (cited as \[Edm60\] in the paper), a rotation system —
//! the clockwise cyclic order of incident edges at every vertex — determines
//! an embedding of the graph on an orientable surface, and the embedding is
//! planar exactly when the surface has genus 0, i.e. when Euler's formula
//! `V − E + F = 2` holds on every connected component. This module is the
//! ground truth the whole workspace verifies embeddings against.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::{Graph, GraphError, VertexId};

/// A rotation system: for every vertex, a cyclic order of its neighbors.
///
/// This is exactly the paper's distributed output format, gathered into one
/// structure: "each vertex must learn the clockwise ordering of its own edges
/// around itself".
///
/// # Example
///
/// ```
/// use planar_graph::{Graph, RotationSystem, VertexId};
///
/// # fn main() -> Result<(), planar_graph::GraphError> {
/// let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)])?;
/// let rot = RotationSystem::new(
///     &g,
///     vec![
///         vec![VertexId(1), VertexId(2)],
///         vec![VertexId(2), VertexId(0)],
///         vec![VertexId(0), VertexId(1)],
///     ],
/// )?;
/// assert!(rot.is_planar_embedding());
/// assert_eq!(rot.face_count(), 2); // inside and outside of the triangle
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RotationSystem {
    rot: Vec<Vec<VertexId>>,
}

impl RotationSystem {
    /// Builds a rotation system for `g`, validating that each vertex's list
    /// is a permutation of its neighbor set.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidRotation`] if any list is not a
    /// permutation of the vertex's neighbors.
    pub fn new(g: &Graph, rot: Vec<Vec<VertexId>>) -> Result<Self, GraphError> {
        if rot.len() != g.vertex_count() {
            return Err(GraphError::InvalidRotation {
                reason: format!(
                    "rotation has {} vertices, graph has {}",
                    rot.len(),
                    g.vertex_count()
                ),
            });
        }
        for v in g.vertices() {
            let mut sorted = rot[v.index()].clone();
            sorted.sort();
            sorted.dedup();
            if sorted.len() != rot[v.index()].len() || sorted != g.neighbors(v) {
                return Err(GraphError::InvalidRotation {
                    reason: format!("rotation at {v} is not a permutation of its neighbors"),
                });
            }
        }
        Ok(RotationSystem { rot })
    }

    /// The default rotation system with neighbors in ascending id order.
    ///
    /// This is an *arbitrary* embedding — typically non-planar for planar
    /// graphs — useful as a starting point and in tests.
    pub fn sorted_default(g: &Graph) -> Self {
        RotationSystem {
            rot: g.vertices().map(|v| g.neighbors(v).to_vec()).collect(),
        }
    }

    /// Number of vertices covered by the rotation system.
    pub fn vertex_count(&self) -> usize {
        self.rot.len()
    }

    /// Number of undirected edges described by the rotation system.
    pub fn edge_count(&self) -> usize {
        self.rot.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// The cyclic neighbor order at `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn order_at(&self, v: VertexId) -> &[VertexId] {
        &self.rot[v.index()]
    }

    /// Consumes the rotation system and returns the raw per-vertex orders.
    pub fn into_orders(self) -> Vec<Vec<VertexId>> {
        self.rot
    }

    /// Traces all faces of the embedding.
    ///
    /// Faces are returned as cyclic sequences of *directed* edges `(u, v)`;
    /// every directed edge appears in exactly one face. The successor of
    /// directed edge `(u, v)` is `(v, w)` where `w` follows `u` in the
    /// rotation at `v` — the standard "next edge in clockwise order" rule.
    pub fn faces(&self) -> Vec<Vec<(VertexId, VertexId)>> {
        // Position of u within rot[v], for O(1) successor lookups.
        let mut pos: HashMap<(VertexId, VertexId), usize> = HashMap::new();
        for (v, order) in self.rot.iter().enumerate() {
            let v = VertexId::from_index(v);
            for (i, &u) in order.iter().enumerate() {
                pos.insert((v, u), i);
            }
        }
        let mut visited: HashMap<(VertexId, VertexId), bool> = HashMap::new();
        let mut faces = Vec::new();
        for (v, order) in self.rot.iter().enumerate() {
            let v = VertexId::from_index(v);
            for &u in order {
                if visited.get(&(v, u)).copied().unwrap_or(false) {
                    continue;
                }
                let mut face = Vec::new();
                let (mut a, mut b) = (v, u);
                loop {
                    visited.insert((a, b), true);
                    face.push((a, b));
                    let i = pos[&(b, a)];
                    let order_b = &self.rot[b.index()];
                    let w = order_b[(i + 1) % order_b.len()];
                    a = b;
                    b = w;
                    if (a, b) == (v, u) {
                        break;
                    }
                }
                faces.push(face);
            }
        }
        faces
    }

    /// Number of faces of the embedding.
    pub fn face_count(&self) -> usize {
        self.faces().len()
    }

    /// Euler genus of the embedded surface, summed over connected
    /// components: for each component, `2·g = 2 − (V − E + F)`.
    ///
    /// Genus 0 means the rotation system is a planar embedding.
    pub fn genus(&self) -> i64 {
        // Group faces and edges by connected component of the *embedded*
        // graph (components are determined by the rotation itself).
        let g = self.to_graph();
        let comps = crate::traversal::connected_components(&g);
        let mut comp_of = vec![usize::MAX; self.rot.len()];
        for (ci, comp) in comps.iter().enumerate() {
            for &v in comp {
                comp_of[v.index()] = ci;
            }
        }
        let mut verts = vec![0i64; comps.len()];
        let mut edges = vec![0i64; comps.len()];
        let mut faces = vec![0i64; comps.len()];
        for (ci, comp) in comps.iter().enumerate() {
            verts[ci] = comp.len() as i64;
        }
        for e in g.edges() {
            edges[comp_of[e.lo().index()]] += 1;
        }
        for face in self.faces() {
            let (u, _) = face[0];
            faces[comp_of[u.index()]] += 1;
        }
        let mut genus2 = 0i64;
        for ci in 0..comps.len() {
            if verts[ci] == 1 && edges[ci] == 0 {
                continue; // isolated vertex: genus 0 by convention
            }
            genus2 += 2 - (verts[ci] - edges[ci] + faces[ci]);
        }
        genus2 / 2
    }

    /// Returns `true` if this rotation system is a planar embedding
    /// (Euler genus 0 on every connected component).
    pub fn is_planar_embedding(&self) -> bool {
        self.genus() == 0
    }

    /// Reconstructs the underlying [`Graph`] from the rotation lists.
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::new(self.rot.len());
        for (v, order) in self.rot.iter().enumerate() {
            let v = VertexId::from_index(v);
            for &u in order {
                if v < u {
                    g.add_edge(v, u)
                        .expect("rotation lists are symmetric and simple");
                }
            }
        }
        g
    }

    /// Reverses the rotation at every vertex, producing the mirror-image
    /// embedding. Planarity (and all face sizes) are preserved.
    pub fn mirrored(&self) -> Self {
        RotationSystem {
            rot: self
                .rot
                .iter()
                .map(|order| order.iter().rev().copied().collect())
                .collect(),
        }
    }

    /// The face (as a directed-edge cycle) containing the directed edge
    /// `(u, v)`, or `None` if that directed edge does not exist.
    pub fn face_of(&self, u: VertexId, v: VertexId) -> Option<Vec<(VertexId, VertexId)>> {
        if u.index() >= self.rot.len() || !self.rot[u.index()].contains(&v) {
            return None;
        }
        self.faces().into_iter().find(|f| f.contains(&(u, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_planar() -> (Graph, RotationSystem) {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        let rot = RotationSystem::sorted_default(&g);
        (g, rot)
    }

    #[test]
    fn triangle_has_two_faces() {
        let (_, rot) = triangle_planar();
        assert_eq!(rot.face_count(), 2);
        assert!(rot.is_planar_embedding());
        assert_eq!(rot.genus(), 0);
    }

    #[test]
    fn k4_planar_and_nonplanar_rotations() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        // A known planar rotation of K4 (vertex 3 in the center).
        let planar = RotationSystem::new(
            &g,
            vec![
                vec![VertexId(1), VertexId(3), VertexId(2)],
                vec![VertexId(2), VertexId(3), VertexId(0)],
                vec![VertexId(0), VertexId(3), VertexId(1)],
                vec![VertexId(0), VertexId(1), VertexId(2)],
            ],
        )
        .unwrap();
        assert!(planar.is_planar_embedding());
        assert_eq!(planar.face_count(), 4); // Euler: 4 - 6 + F = 2

        // The sorted-default rotation of K4 happens to be non-planar.
        let default = RotationSystem::sorted_default(&g);
        assert_eq!(default.genus(), 1);
        assert!(!default.is_planar_embedding());
    }

    #[test]
    fn every_directed_edge_in_exactly_one_face() {
        let (g, rot) = triangle_planar();
        let faces = rot.faces();
        let total: usize = faces.iter().map(Vec::len).sum();
        assert_eq!(total, 2 * g.edge_count());
    }

    #[test]
    fn validation_rejects_bad_rotation() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        let bad = RotationSystem::new(
            &g,
            vec![
                vec![VertexId(1)], // missing neighbor 2
                vec![VertexId(2), VertexId(0)],
                vec![VertexId(0), VertexId(1)],
            ],
        );
        assert!(matches!(bad, Err(GraphError::InvalidRotation { .. })));
    }

    #[test]
    fn tree_always_planar_one_face() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (1, 3), (1, 4)]).unwrap();
        let rot = RotationSystem::sorted_default(&g);
        // Any rotation of a tree is planar with a single face.
        assert!(rot.is_planar_embedding());
        assert_eq!(rot.face_count(), 1);
        assert_eq!(rot.faces()[0].len(), 2 * g.edge_count());
    }

    #[test]
    fn mirrored_preserves_planarity() {
        let (_, rot) = triangle_planar();
        let m = rot.mirrored();
        assert!(m.is_planar_embedding());
        assert_eq!(m.face_count(), rot.face_count());
    }

    #[test]
    fn to_graph_roundtrip() {
        let (g, rot) = triangle_planar();
        assert_eq!(rot.to_graph(), g);
    }

    #[test]
    fn face_of_finds_directed_edge() {
        let (_, rot) = triangle_planar();
        let f = rot.face_of(VertexId(0), VertexId(1)).unwrap();
        assert!(f.contains(&(VertexId(0), VertexId(1))));
        assert!(rot.face_of(VertexId(0), VertexId(0)).is_none());
    }

    #[test]
    fn disconnected_components_counted_separately() {
        // Two disjoint triangles: each planar, total genus 0.
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap();
        let rot = RotationSystem::sorted_default(&g);
        assert!(rot.is_planar_embedding());
        assert_eq!(rot.face_count(), 4);
    }
}
