//! CSR-style directed-arc index over a [`Graph`].
//!
//! Every undirected edge `{u, v}` contributes two *arcs* — the ordered
//! pairs `(u, v)` and `(v, u)` — and this module assigns each arc a dense
//! [`ArcId`] in `0..2m`. Arcs are laid out in CSR order: the out-arcs of
//! vertex `u` occupy the contiguous block `start(u)..start(u+1)`, sorted by
//! head id (inherited from the graph's sorted adjacency lists). That gives
//! the simulation kernel everything it needs to run allocation-free:
//!
//! * per-arc message buffers and word budgets become flat `Vec`s indexed by
//!   `ArcId` instead of per-round `HashMap`s;
//! * the in-arcs of `v`, enumerated via [`ArcIndex::rev`] over `v`'s
//!   out-arc block, arrive already sorted by sender id, so inboxes are
//!   deterministic without sorting;
//! * destination validation is a slot lookup instead of a binary search.
//!
//! The index is immutable: build it with [`ArcIndex::build`] (or the
//! [`Graph::arc_index`] convenience) after the graph is fully constructed.

use crate::{Graph, VertexId};

/// Dense identifier of a directed arc `(u, v)`; the reverse arc `(v, u)`
/// has its own id. Valid ids are `0..2m` for an `m`-edge graph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ArcId(pub u32);

impl ArcId {
    /// The arc id as a `usize` index into arc-indexed arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Immutable CSR arc index of a graph snapshot (see module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArcIndex {
    /// CSR offsets: out-arcs of vertex `u` are `start[u]..start[u + 1]`.
    /// Length `n + 1`.
    start: Vec<usize>,
    /// Head (destination) of each arc, grouped by tail and sorted by head
    /// id within each group. Length `2m`.
    head: Vec<VertexId>,
    /// `rev[a]` is the arc id of the reverse of arc `a`, i.e. the arc
    /// `(v, u)` for `a = (u, v)`. An involution without fixed points.
    rev: Vec<ArcId>,
}

impl ArcIndex {
    /// Builds the index from a graph snapshot in `O(n + m)`.
    pub fn build(g: &Graph) -> Self {
        let n = g.vertex_count();
        let mut start = Vec::with_capacity(n + 1);
        start.push(0usize);
        for v in g.vertices() {
            start.push(start[v.index()] + g.degree(v));
        }
        let arcs = start[n];
        let mut head = Vec::with_capacity(arcs);
        for v in g.vertices() {
            head.extend_from_slice(g.neighbors(v));
        }
        // rev[(u, v)] = start[v] + slot of u in v's list. Instead of a
        // binary search per arc, exploit sortedness: visiting tails in
        // increasing order means, for any head `v`, the tails `u < v`
        // arrive in increasing order — exactly the order of the `< v`
        // prefix of `v`'s sorted block — so a per-head cursor pairs each
        // arc with its reverse in one O(n + m) pass.
        let mut rev = vec![ArcId(0); arcs];
        let mut cursor = start.clone(); // next unpaired in-arc slot per head
        for u in g.vertices() {
            for a in start[u.index()]..start[u.index() + 1] {
                let v = head[a];
                if u < v {
                    let b = cursor[v.index()];
                    debug_assert_eq!(head[b], u, "adjacency lists out of sync");
                    rev[a] = ArcId(b as u32);
                    rev[b] = ArcId(a as u32);
                    cursor[v.index()] += 1;
                }
            }
        }
        ArcIndex { start, head, rev }
    }

    /// Number of vertices of the indexed graph.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.start.len() - 1
    }

    /// Number of directed arcs (`2m`).
    #[inline]
    pub fn arc_count(&self) -> usize {
        self.head.len()
    }

    /// Heap bytes backing the CSR tables (capacities, not lengths) — the
    /// resident cost of keeping this index built, reported alongside the
    /// kernel's buffers in memory accounting.
    pub fn memory_bytes(&self) -> usize {
        self.start.capacity() * std::mem::size_of::<usize>()
            + self.head.capacity() * std::mem::size_of::<VertexId>()
            + self.rev.capacity() * std::mem::size_of::<ArcId>()
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        self.start[u.index() + 1] - self.start[u.index()]
    }

    /// First arc id of `u`'s out-arc block.
    #[inline]
    pub fn first_arc(&self, u: VertexId) -> ArcId {
        ArcId(self.start[u.index()] as u32)
    }

    /// The arc id of `u`'s `slot`-th out-arc (slots are positions in `u`'s
    /// sorted neighbor list).
    #[inline]
    pub fn arc_at(&self, u: VertexId, slot: usize) -> ArcId {
        debug_assert!(slot < self.degree(u));
        ArcId((self.start[u.index()] + slot) as u32)
    }

    /// Head (destination) of an arc.
    #[inline]
    pub fn head(&self, a: ArcId) -> VertexId {
        self.head[a.index()]
    }

    /// Tail (source) of an arc, via binary search over the offsets
    /// (`O(log n)`; the kernel never needs this in its hot loop because it
    /// enumerates arcs tail-first).
    pub fn tail(&self, a: ArcId) -> VertexId {
        let i = self.start.partition_point(|&s| s <= a.index());
        VertexId::from_index(i - 1)
    }

    /// The reverse arc `(v, u)` of `a = (u, v)`.
    #[inline]
    pub fn rev(&self, a: ArcId) -> ArcId {
        self.rev[a.index()]
    }

    /// Position of `v` in `u`'s sorted neighbor list, or `None` when
    /// `(u, v)` is not an arc. `O(log deg u)`; the kernel amortizes this to
    /// `O(1)` with an epoch-stamped slot table, see
    /// `congest_sim::network`.
    pub fn neighbor_slot(&self, u: VertexId, v: VertexId) -> Option<usize> {
        let block = &self.head[self.start[u.index()]..self.start[u.index() + 1]];
        block.binary_search(&v).ok()
    }

    /// The arc id of `(u, v)`, or `None` when absent.
    pub fn arc(&self, u: VertexId, v: VertexId) -> Option<ArcId> {
        self.neighbor_slot(u, v).map(|slot| self.arc_at(u, slot))
    }

    /// Iterator over `(slot, arc, head)` of `u`'s out-arcs in slot order.
    pub fn out_arcs(&self, u: VertexId) -> impl Iterator<Item = (usize, ArcId, VertexId)> + '_ {
        let lo = self.start[u.index()];
        let hi = self.start[u.index() + 1];
        (lo..hi).map(move |a| (a - lo, ArcId(a as u32), self.head[a]))
    }
}

impl Graph {
    /// Builds the CSR arc index of the current graph snapshot
    /// (see [`ArcIndex`]). `O(n + m)`; callers that mutate the graph
    /// afterwards must rebuild.
    pub fn arc_index(&self) -> ArcIndex {
        ArcIndex::build(self)
    }

    /// Position of `v` in `u`'s sorted neighbor list, or `None` when the
    /// edge is absent. `O(log deg u)`.
    pub fn neighbor_slot(&self, u: VertexId, v: VertexId) -> Option<usize> {
        if u.index() >= self.vertex_count() {
            return None;
        }
        self.neighbors(u).binary_search(&v).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_roundtrip(g: &Graph) {
        let idx = g.arc_index();
        assert_eq!(idx.vertex_count(), g.vertex_count());
        assert_eq!(idx.arc_count(), 2 * g.edge_count());
        for u in g.vertices() {
            assert_eq!(idx.degree(u), g.degree(u));
            for (slot, &v) in g.neighbors(u).iter().enumerate() {
                // slot <-> arc <-> (head, tail) round-trip.
                assert_eq!(idx.neighbor_slot(u, v), Some(slot));
                assert_eq!(g.neighbor_slot(u, v), Some(slot));
                let a = idx.arc_at(u, slot);
                assert_eq!(idx.arc(u, v), Some(a));
                assert_eq!(idx.head(a), v);
                assert_eq!(idx.tail(a), u);
                // rev is a fixed-point-free involution pairing (u,v)/(v,u).
                let b = idx.rev(a);
                assert_ne!(a, b);
                assert_eq!(idx.rev(b), a);
                assert_eq!(idx.head(b), u);
                assert_eq!(idx.tail(b), v);
            }
            // Out-arc iteration covers exactly the neighbor list in order.
            let heads: Vec<VertexId> = idx.out_arcs(u).map(|(_, _, h)| h).collect();
            assert_eq!(heads, g.neighbors(u));
        }
        // Arc ids are dense: every id in 0..2m is some (u, slot).
        let mut seen = vec![false; idx.arc_count()];
        for u in g.vertices() {
            for (_, a, _) in idx.out_arcs(u) {
                assert!(!seen[a.index()], "duplicate arc id");
                seen[a.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn path_index_roundtrip() {
        let g = Graph::from_edges(5, (0..4).map(|i| (i, i + 1))).unwrap();
        check_roundtrip(&g);
    }

    #[test]
    fn star_index_roundtrip() {
        let g = Graph::from_edges(8, (1..8).map(|i| (0, i))).unwrap();
        check_roundtrip(&g);
    }

    #[test]
    fn triangulation_index_roundtrip() {
        // Triangulated 4x4 grid: the denser biconnected workload family.
        let mut edges = Vec::new();
        let idx = |r: u32, c: u32| r * 4 + c;
        for r in 0..4u32 {
            for c in 0..4u32 {
                if c + 1 < 4 {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < 4 {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
                if r + 1 < 4 && c + 1 < 4 {
                    edges.push((idx(r, c), idx(r + 1, c + 1)));
                }
            }
        }
        let g = Graph::from_edges(16, edges).unwrap();
        check_roundtrip(&g);
    }

    #[test]
    fn absent_edges_have_no_slot() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let idx = g.arc_index();
        assert_eq!(idx.neighbor_slot(VertexId(0), VertexId(2)), None);
        assert_eq!(idx.arc(VertexId(0), VertexId(3)), None);
        assert_eq!(g.neighbor_slot(VertexId(0), VertexId(2)), None);
        assert_eq!(g.neighbor_slot(VertexId(9), VertexId(0)), None);
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = Graph::new(0);
        let idx = g.arc_index();
        assert_eq!(idx.arc_count(), 0);
        let g = Graph::new(3);
        let idx = g.arc_index();
        assert_eq!(idx.arc_count(), 0);
        assert_eq!(idx.vertex_count(), 3);
        assert_eq!(idx.degree(VertexId(1)), 0);
    }
}
