use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a vertex in a [`Graph`](crate::Graph).
///
/// Vertices of an `n`-vertex graph are numbered `0..n`. In the distributed
/// setting of the paper these double as the globally unique node IDs that the
/// CONGEST model assumes each node starts with.
///
/// # Example
///
/// ```
/// use planar_graph::VertexId;
///
/// let v = VertexId(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(format!("{v}"), "v3");
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct VertexId(pub u32);

impl VertexId {
    /// Returns the vertex id as a `usize` index into vertex-indexed arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a vertex id from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in a `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        VertexId(u32::try_from(index).expect("vertex index exceeds u32::MAX"))
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(raw: u32) -> Self {
        VertexId(raw)
    }
}

/// Canonical identifier of an undirected edge.
///
/// Following footnote 5 of the paper, the edge-ID of `e = {u, v}` is the pair
/// `(ID(u), ID(v))` with `ID(u) < ID(v)`. Edge IDs are totally ordered, which
/// the paper exploits to name each biconnected component by its smallest
/// edge ID.
///
/// # Example
///
/// ```
/// use planar_graph::{EdgeId, VertexId};
///
/// let e = EdgeId::new(VertexId(7), VertexId(2));
/// assert_eq!(e.lo(), VertexId(2));
/// assert_eq!(e.hi(), VertexId(7));
/// assert_eq!(e, EdgeId::new(VertexId(2), VertexId(7)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct EdgeId {
    lo: VertexId,
    hi: VertexId,
}

impl EdgeId {
    /// Builds the canonical edge id for the undirected edge `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics if `u == v`; self-loops are not representable (the paper only
    /// considers simple graphs).
    #[inline]
    pub fn new(u: VertexId, v: VertexId) -> Self {
        assert_ne!(u, v, "self-loops are not valid edges");
        if u < v {
            EdgeId { lo: u, hi: v }
        } else {
            EdgeId { lo: v, hi: u }
        }
    }

    /// The smaller endpoint.
    #[inline]
    pub fn lo(self) -> VertexId {
        self.lo
    }

    /// The larger endpoint.
    #[inline]
    pub fn hi(self) -> VertexId {
        self.hi
    }

    /// Both endpoints as a `(lo, hi)` pair.
    #[inline]
    pub fn endpoints(self) -> (VertexId, VertexId) {
        (self.lo, self.hi)
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an endpoint of this edge.
    #[inline]
    pub fn other(self, v: VertexId) -> VertexId {
        if v == self.lo {
            self.hi
        } else if v == self.hi {
            self.lo
        } else {
            panic!("{v} is not an endpoint of {self}")
        }
    }

    /// Returns `true` if `v` is one of the two endpoints.
    #[inline]
    pub fn contains(self, v: VertexId) -> bool {
        v == self.lo || v == self.hi
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}-{})", self.lo.0, self.hi.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId::from_index(42);
        assert_eq!(v.index(), 42);
        assert_eq!(VertexId::from(42u32), v);
    }

    #[test]
    fn edge_id_is_canonical() {
        let a = EdgeId::new(VertexId(5), VertexId(1));
        let b = EdgeId::new(VertexId(1), VertexId(5));
        assert_eq!(a, b);
        assert_eq!(a.lo(), VertexId(1));
        assert_eq!(a.hi(), VertexId(5));
        assert_eq!(a.endpoints(), (VertexId(1), VertexId(5)));
    }

    #[test]
    fn edge_id_other_endpoint() {
        let e = EdgeId::new(VertexId(3), VertexId(9));
        assert_eq!(e.other(VertexId(3)), VertexId(9));
        assert_eq!(e.other(VertexId(9)), VertexId(3));
        assert!(e.contains(VertexId(3)));
        assert!(!e.contains(VertexId(4)));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn edge_id_rejects_self_loop() {
        let _ = EdgeId::new(VertexId(2), VertexId(2));
    }

    #[test]
    fn edge_id_ordering_matches_paper() {
        // Paper footnote 5: edges ordered lexicographically by (lo, hi).
        let e1 = EdgeId::new(VertexId(0), VertexId(9));
        let e2 = EdgeId::new(VertexId(1), VertexId(2));
        assert!(e1 < e2);
    }
}
