use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::{EdgeId, GraphError, VertexId};

/// A finite simple undirected graph with sorted adjacency lists.
///
/// This is the common representation used throughout the workspace: the
/// CONGEST simulator interprets it as the communication topology, the planar
/// crate embeds it, and the core crate runs the distributed embedding
/// algorithm on it.
///
/// Invariants maintained by construction:
/// * no self-loops, no parallel edges (the paper assumes simple graphs);
/// * every adjacency list is sorted by vertex id, so `has_edge` is
///   `O(log deg)` and iteration order is deterministic.
///
/// # Example
///
/// ```
/// use planar_graph::{Graph, VertexId};
///
/// # fn main() -> Result<(), planar_graph::GraphError> {
/// let mut g = Graph::new(3);
/// g.add_edge(VertexId(0), VertexId(1))?;
/// g.add_edge(VertexId(1), VertexId(2))?;
/// assert!(g.has_edge(VertexId(0), VertexId(1)));
/// assert!(!g.has_edge(VertexId(0), VertexId(2)));
/// assert_eq!(g.neighbors(VertexId(1)), &[VertexId(0), VertexId(2)]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    adj: Vec<Vec<VertexId>>,
    m: usize,
}

impl Graph {
    /// Creates an edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            m: 0,
        }
    }

    /// Builds a graph on `n` vertices from an iterator of edges given as
    /// `(u, v)` index pairs.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`], [`GraphError::ParallelEdge`] or
    /// [`GraphError::VertexOutOfRange`] on invalid input.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            g.add_edge(VertexId(u), VertexId(v))?;
        }
        Ok(g)
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.m
    }

    /// Iterator over all vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.adj.len()).map(VertexId::from_index)
    }

    /// Iterator over all edges in canonical (sorted) order of [`EdgeId`].
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            let u = VertexId::from_index(u);
            nbrs.iter()
                .filter(move |&&v| u < v)
                .map(move |&v| EdgeId::new(u, v))
        })
    }

    /// Checks that `v` is a valid vertex of this graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] when `v.index() >= n`.
    pub fn check_vertex(&self, v: VertexId) -> Result<(), GraphError> {
        if v.index() >= self.adj.len() {
            Err(GraphError::VertexOutOfRange {
                vertex: v,
                n: self.adj.len(),
            })
        } else {
            Ok(())
        }
    }

    /// Inserts the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns an error for self-loops, duplicate edges or out-of-range
    /// endpoints; the graph is unchanged on error.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        let pos_u = match self.adj[u.index()].binary_search(&v) {
            Ok(_) => return Err(GraphError::ParallelEdge { u, v }),
            Err(pos) => pos,
        };
        let pos_v = self.adj[v.index()]
            .binary_search(&u)
            .expect_err("adjacency lists out of sync");
        self.adj[u.index()].insert(pos_u, v);
        self.adj[v.index()].insert(pos_v, u);
        self.m += 1;
        Ok(())
    }

    /// Removes the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingEdge`] when the edge is absent and
    /// [`GraphError::VertexOutOfRange`] for invalid endpoints; the graph is
    /// unchanged on error.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        let pos_u = match self.adj[u.index()].binary_search(&v) {
            Ok(pos) => pos,
            Err(_) => return Err(GraphError::MissingEdge { u, v }),
        };
        let pos_v = self.adj[v.index()]
            .binary_search(&u)
            .expect("adjacency lists out of sync");
        self.adj[u.index()].remove(pos_u);
        self.adj[v.index()].remove(pos_v);
        self.m -= 1;
        Ok(())
    }

    /// Appends a fresh isolated vertex and returns its id (`n` before the
    /// call). Existing vertex ids are unaffected.
    pub fn add_vertex(&mut self) -> VertexId {
        self.adj.push(Vec::new());
        VertexId::from_index(self.adj.len() - 1)
    }

    /// Removes vertex `v` along with all incident edges. Every vertex with
    /// id greater than `v` is renumbered down by one, preserving the
    /// relative id order of the survivors (the algorithm's leader election
    /// and tie-breaks are id-based, so compaction keeps the graph in the
    /// canonical `0..n` id space).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] when `v` is invalid; the
    /// graph is unchanged on error.
    pub fn remove_vertex(&mut self, v: VertexId) -> Result<(), GraphError> {
        self.check_vertex(v)?;
        self.m -= self.adj[v.index()].len();
        self.adj.remove(v.index());
        for nbrs in &mut self.adj {
            nbrs.retain(|&w| w != v);
            for w in nbrs.iter_mut() {
                if *w > v {
                    *w = VertexId(w.0 - 1);
                }
            }
        }
        Ok(())
    }

    /// Returns `true` if the undirected edge `{u, v}` is present.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        u.index() < self.adj.len() && self.adj[u.index()].binary_search(&v).is_ok()
    }

    /// The sorted list of neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adj[v.index()]
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v.index()].len()
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Returns `true` if the graph is connected (the empty graph and the
    /// one-vertex graph count as connected).
    pub fn is_connected(&self) -> bool {
        crate::traversal::connected_components(self).len() <= 1
    }

    /// Extracts the subgraph induced by `vertices`.
    ///
    /// Returns the induced graph (with vertices renumbered `0..k` in the
    /// order given) and the mapping from new index to original [`VertexId`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if any listed vertex is
    /// invalid, and [`GraphError::ParallelEdge`] if the list contains
    /// duplicates.
    pub fn induced_subgraph(
        &self,
        vertices: &[VertexId],
    ) -> Result<(Graph, Vec<VertexId>), GraphError> {
        let mut index: HashMap<VertexId, u32> = HashMap::with_capacity(vertices.len());
        for (i, &v) in vertices.iter().enumerate() {
            self.check_vertex(v)?;
            if index.insert(v, i as u32).is_some() {
                return Err(GraphError::ParallelEdge { u: v, v });
            }
        }
        let mut sub = Graph::new(vertices.len());
        for (i, &v) in vertices.iter().enumerate() {
            for &w in self.neighbors(v) {
                if let Some(&j) = index.get(&w) {
                    if (i as u32) < j {
                        sub.add_edge(VertexId(i as u32), VertexId(j))?;
                    }
                }
            }
        }
        Ok((sub, vertices.to_vec()))
    }

    /// Sum of `min(deg(u), deg(v))` over the edges of densest subgraphs is
    /// not tracked; instead this returns the *arboricity upper bound*
    /// `ceil(m / (n - 1))` for connected graphs, a cheap proxy used by the
    /// everywhere-sparse checks.
    pub fn density_bound(&self) -> usize {
        if self.adj.len() <= 1 {
            return 0;
        }
        self.m.div_ceil(self.adj.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k4() -> Graph {
        Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn construction_and_counts() {
        let g = k4();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.max_degree(), 3);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 3);
        }
    }

    #[test]
    fn adjacency_is_sorted() {
        let g = Graph::from_edges(4, [(0, 3), (0, 1), (0, 2)]).unwrap();
        assert_eq!(
            g.neighbors(VertexId(0)),
            &[VertexId(1), VertexId(2), VertexId(3)]
        );
    }

    #[test]
    fn rejects_self_loop_and_parallel() {
        assert!(matches!(
            Graph::from_edges(3, [(1, 1)]),
            Err(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            Graph::from_edges(3, [(0, 1), (1, 0)]),
            Err(GraphError::ParallelEdge { .. })
        ));
        assert!(matches!(
            Graph::from_edges(3, [(0, 7)]),
            Err(GraphError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn edges_iterate_in_canonical_order() {
        let g = k4();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 6);
        let mut sorted = edges.clone();
        sorted.sort();
        assert_eq!(edges, sorted);
    }

    #[test]
    fn connectivity() {
        assert!(k4().is_connected());
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(!g.is_connected());
        assert!(Graph::new(1).is_connected());
        assert!(Graph::new(0).is_connected());
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let g = k4();
        let (sub, map) = g
            .induced_subgraph(&[VertexId(1), VertexId(3), VertexId(2)])
            .unwrap();
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(sub.edge_count(), 3); // triangle
        assert_eq!(map, vec![VertexId(1), VertexId(3), VertexId(2)]);
    }

    #[test]
    fn induced_subgraph_rejects_duplicates() {
        let g = k4();
        assert!(g.induced_subgraph(&[VertexId(1), VertexId(1)]).is_err());
    }

    #[test]
    fn remove_edge_round_trips_with_add() {
        let mut g = k4();
        g.remove_edge(VertexId(1), VertexId(3)).unwrap();
        assert_eq!(g.edge_count(), 5);
        assert!(!g.has_edge(VertexId(1), VertexId(3)));
        assert!(!g.has_edge(VertexId(3), VertexId(1)));
        g.add_edge(VertexId(3), VertexId(1)).unwrap();
        assert_eq!(g, k4());
    }

    #[test]
    fn remove_edge_rejects_missing_and_out_of_range() {
        let mut g = Graph::from_edges(3, [(0, 1)]).unwrap();
        let before = g.clone();
        assert!(matches!(
            g.remove_edge(VertexId(0), VertexId(2)),
            Err(GraphError::MissingEdge { .. })
        ));
        assert!(matches!(
            g.remove_edge(VertexId(0), VertexId(9)),
            Err(GraphError::VertexOutOfRange { .. })
        ));
        assert_eq!(g, before);
    }

    #[test]
    fn add_vertex_appends_isolated() {
        let mut g = k4();
        let v = g.add_vertex();
        assert_eq!(v, VertexId(4));
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.degree(v), 0);
        assert_eq!(g.edge_count(), 6);
        g.add_edge(v, VertexId(0)).unwrap();
        assert!(g.has_edge(VertexId(0), VertexId(4)));
    }

    #[test]
    fn remove_vertex_compacts_ids() {
        // Path 0-1-2-3 plus chord 0-3; removing vertex 1 leaves 0, 2->1,
        // 3->2 with edges {1,2} (old {2,3}) and {0,2} (old {0,3}).
        let mut g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        g.remove_vertex(VertexId(1)).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(VertexId(1), VertexId(2)));
        assert!(g.has_edge(VertexId(0), VertexId(2)));
        assert!(!g.has_edge(VertexId(0), VertexId(1)));
        // Adjacency stays sorted after renumbering.
        for v in g.vertices() {
            let nbrs = g.neighbors(v);
            assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn remove_vertex_updates_edge_count() {
        let mut g = k4();
        g.remove_vertex(VertexId(0)).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3); // the remaining triangle
        assert!(g.remove_vertex(VertexId(7)).is_err());
    }
}
