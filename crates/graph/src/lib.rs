//! # planar-graph
//!
//! Foundation graph library for the planar-networks workspace, the Rust
//! reproduction of *Distributed Algorithms for Planar Networks I: Planar
//! Embedding* (Ghaffari & Haeupler, PODC 2016).
//!
//! This crate provides the purely combinatorial substrate every other crate
//! builds on:
//!
//! * [`Graph`] — a simple undirected graph with sorted adjacency lists,
//!   canonical [`EdgeId`]s (the paper's `(min-endpoint, max-endpoint)` edge
//!   identifiers) and cheap induced-subgraph extraction.
//! * [`traversal`] — BFS/DFS, connected components, exact and 2-approximate
//!   diameter.
//! * [`biconnected`] — Tarjan's biconnected-component decomposition, cut
//!   vertices and the block–cut tree, which Section 3 of the paper uses to
//!   characterize the *interface* of a partial embedding (Observation 3.2).
//! * [`rotation`] — rotation systems (combinatorial embeddings), face
//!   tracing and the Euler-genus planarity check that all embeddings in the
//!   workspace are verified against.
//! * [`cyclic`] — utilities for comparing and editing cyclic orders.
//! * [`arcs`] — a CSR-style directed-arc index ([`ArcIndex`]) assigning
//!   every ordered pair `(u, v)` a dense [`ArcId`]; the congest simulation
//!   kernel runs allocation-free on top of it.
//!
//! # Example
//!
//! ```
//! use planar_graph::{Graph, VertexId};
//!
//! # fn main() -> Result<(), planar_graph::GraphError> {
//! // K4 — the smallest 3-connected planar graph.
//! let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])?;
//! assert_eq!(g.edge_count(), 6);
//! assert!(g.is_connected());
//! assert_eq!(g.degree(VertexId(0)), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arcs;
pub mod biconnected;
pub mod cyclic;
mod error;
mod graph;
mod ids;
pub mod rotation;
pub mod traversal;

pub use arcs::{ArcId, ArcIndex};
pub use error::GraphError;
pub use graph::Graph;
pub use ids::{EdgeId, VertexId};
pub use rotation::RotationSystem;
