//! Breadth-first and depth-first traversal, connectivity and distance
//! computations.
//!
//! The distributed algorithm of the paper is organized around a BFS tree of
//! the network (Section 4); the centralized traversals here mirror that
//! structure and are also used by the verifiers and workload generators.

use std::collections::VecDeque;

use crate::{Graph, VertexId};

/// Distance value used for unreachable vertices.
pub const UNREACHABLE: u32 = u32::MAX;

/// The result of a breadth-first search from a root vertex.
///
/// # Example
///
/// ```
/// use planar_graph::{Graph, VertexId};
/// use planar_graph::traversal::bfs;
///
/// # fn main() -> Result<(), planar_graph::GraphError> {
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
/// let t = bfs(&g, VertexId(0));
/// assert_eq!(t.dist[3], 3);
/// assert_eq!(t.parent[3], Some(VertexId(2)));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct BfsTree {
    /// Root the search started from.
    pub root: VertexId,
    /// BFS parent of each vertex (`None` for the root and unreachable vertices).
    pub parent: Vec<Option<VertexId>>,
    /// Hop distance from the root ([`UNREACHABLE`] if not reachable).
    pub dist: Vec<u32>,
    /// Vertices in the order they were dequeued (reachable vertices only).
    pub order: Vec<VertexId>,
}

impl BfsTree {
    /// Depth of the BFS tree: maximum distance of any reachable vertex.
    pub fn depth(&self) -> u32 {
        self.order
            .iter()
            .map(|v| self.dist[v.index()])
            .max()
            .unwrap_or(0)
    }

    /// The children of `v` in the BFS tree.
    pub fn children(&self, v: VertexId) -> Vec<VertexId> {
        self.order
            .iter()
            .copied()
            .filter(|&c| self.parent[c.index()] == Some(v))
            .collect()
    }

    /// The unique tree path from `v` up to the root (inclusive of both ends).
    ///
    /// # Panics
    ///
    /// Panics if `v` was not reached by the search.
    pub fn path_to_root(&self, v: VertexId) -> Vec<VertexId> {
        assert_ne!(
            self.dist[v.index()],
            UNREACHABLE,
            "{v} unreachable from root"
        );
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        path
    }

    /// Number of vertices in the subtree rooted at each vertex.
    ///
    /// Computed bottom-up over the BFS order; unreachable vertices get 0.
    pub fn subtree_sizes(&self) -> Vec<usize> {
        let mut size = vec![0usize; self.parent.len()];
        for &v in self.order.iter().rev() {
            size[v.index()] += 1;
            if let Some(p) = self.parent[v.index()] {
                size[p.index()] += size[v.index()];
            }
        }
        size
    }
}

/// Runs a breadth-first search from `root`.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn bfs(g: &Graph, root: VertexId) -> BfsTree {
    let n = g.vertex_count();
    assert!(root.index() < n, "bfs root out of range");
    let mut parent = vec![None; n];
    let mut dist = vec![UNREACHABLE; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = VecDeque::new();
    dist[root.index()] = 0;
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &w in g.neighbors(v) {
            if dist[w.index()] == UNREACHABLE {
                dist[w.index()] = dist[v.index()] + 1;
                parent[w.index()] = Some(v);
                queue.push_back(w);
            }
        }
    }
    BfsTree {
        root,
        parent,
        dist,
        order,
    }
}

/// Returns the connected components as lists of vertices.
///
/// Components are ordered by their smallest vertex; vertices within a
/// component are in BFS order from that smallest vertex.
pub fn connected_components(g: &Graph) -> Vec<Vec<VertexId>> {
    let n = g.vertex_count();
    let mut seen = vec![false; n];
    let mut components = Vec::new();
    for s in g.vertices() {
        if seen[s.index()] {
            continue;
        }
        let tree = bfs(g, s);
        let comp: Vec<VertexId> = tree.order;
        for &v in &comp {
            seen[v.index()] = true;
        }
        components.push(comp);
    }
    components
}

/// Eccentricity of `v`: the maximum hop distance from `v` to any vertex.
///
/// # Errors-like behaviour
///
/// Returns `None` if the graph is disconnected (some vertex unreachable).
pub fn eccentricity(g: &Graph, v: VertexId) -> Option<u32> {
    let t = bfs(g, v);
    if t.order.len() != g.vertex_count() {
        return None;
    }
    Some(t.depth())
}

/// Exact diameter by all-pairs BFS (`O(n·m)`); intended for test and
/// benchmark instances, not for very large graphs.
///
/// Returns `None` for disconnected or empty graphs.
pub fn diameter_exact(g: &Graph) -> Option<u32> {
    if g.vertex_count() == 0 {
        return None;
    }
    let mut best = 0;
    for v in g.vertices() {
        best = best.max(eccentricity(g, v)?);
    }
    Some(best)
}

/// 2-approximate diameter from a single BFS (the distributed estimate the
/// paper's preliminaries assume known): `ecc(v) <= D <= 2·ecc(v)`.
///
/// Returns `None` for disconnected or empty graphs.
pub fn diameter_2approx(g: &Graph) -> Option<u32> {
    if g.vertex_count() == 0 {
        return None;
    }
    eccentricity(g, VertexId(0))
}

/// Iterative depth-first search; returns vertices in preorder.
pub fn dfs_preorder(g: &Graph, root: VertexId) -> Vec<VertexId> {
    let n = g.vertex_count();
    assert!(root.index() < n, "dfs root out of range");
    let mut seen = vec![false; n];
    let mut stack = vec![root];
    let mut order = Vec::new();
    while let Some(v) = stack.pop() {
        if seen[v.index()] {
            continue;
        }
        seen[v.index()] = true;
        order.push(v);
        // Push in reverse so that smaller-id neighbors are visited first.
        for &w in g.neighbors(v).iter().rev() {
            if !seen[w.index()] {
                stack.push(w);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn bfs_on_path_gives_linear_distances() {
        let g = path(5);
        let t = bfs(&g, VertexId(0));
        assert_eq!(t.dist, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.depth(), 4);
        assert_eq!(t.path_to_root(VertexId(4)).len(), 5);
    }

    #[test]
    fn bfs_subtree_sizes() {
        // Star with center 0.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap();
        let t = bfs(&g, VertexId(0));
        let sizes = t.subtree_sizes();
        assert_eq!(sizes[0], 4);
        assert_eq!(sizes[1], 1);
        assert_eq!(t.children(VertexId(0)).len(), 3);
    }

    #[test]
    fn components_found() {
        let g = Graph::from_edges(5, [(0, 1), (2, 3)]).unwrap();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![VertexId(0), VertexId(1)]);
        assert_eq!(comps[2], vec![VertexId(4)]);
    }

    #[test]
    fn diameter_of_cycle() {
        let n = 8u32;
        let g = Graph::from_edges(n as usize, (0..n).map(|i| (i, (i + 1) % n))).unwrap();
        assert_eq!(diameter_exact(&g), Some(4));
        let approx = diameter_2approx(&g).unwrap();
        assert!((4..=8).contains(&approx));
    }

    #[test]
    fn diameter_none_when_disconnected() {
        let g = Graph::from_edges(4, [(0, 1)]).unwrap();
        assert_eq!(diameter_exact(&g), None);
        assert_eq!(eccentricity(&g, VertexId(0)), None);
    }

    #[test]
    fn dfs_visits_all_reachable() {
        let g = path(6);
        let order = dfs_preorder(&g, VertexId(0));
        assert_eq!(order.len(), 6);
        assert_eq!(order[0], VertexId(0));
    }
}
