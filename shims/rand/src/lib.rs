//! Offline shim for `rand` 0.8 (see `shims/README.md`).
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! small slice of the rand 0.8 API the workspace actually uses:
//! `rand::rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over integer `Range`/`RangeInclusive` bounds.
//!
//! The generator is SplitMix64 — not the real `StdRng` (ChaCha12), so the
//! *streams differ* from upstream rand; every consumer in this workspace
//! treats seeded randomness as an arbitrary-but-fixed choice and asserts
//! structural properties only, never exact draws. Determinism is what
//! matters, and SplitMix64 is deterministic, seedable, and passes BigCrush
//! for the mixing quality the generators need.

/// Low-level entropy source: 64 uniformly pseudo-random bits per call.
pub trait RngCore {
    /// The next 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from an integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<G: RngCore> Rng for G {}

/// Ranges that can produce a uniform sample, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from `self`.
    fn sample_single<G: RngCore>(self, rng: &mut G) -> T;
}

/// Maps a raw 64-bit draw onto `0..span` without widening overflow
/// (128-bit multiply-shift; Lemire's unbiased-enough reduction for
/// simulation use).
fn reduce(raw: u64, span: u64) -> u64 {
    ((raw as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + reduce(rng.next_u64(), span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<G: RngCore>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = end as i128 - start as i128;
                if span == u64::MAX as i128 {
                    // Full-width range: every 64-bit draw is already uniform.
                    return (start as i128 + rng.next_u64() as i128) as $t;
                }
                (start as i128 + reduce(rng.next_u64(), span as u64 + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64 (Steele, Lea &
    /// Flood 2014). One u64 of state, full 2^64 period, passes BigCrush.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5usize..=5);
            assert_eq!(y, 5);
            let z = rng.gen_range(0u64..=3);
            assert!(z <= 3);
        }
    }

    #[test]
    fn covers_whole_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(3usize..3);
    }
}
