//! Offline shim for `serde` (see `shims/README.md`).
//!
//! The build environment cannot reach crates.io, so this crate stands in
//! for the real `serde`: [`Serialize`] and [`Deserialize`] are *marker
//! traits* with no methods, and the derives emit empty impls. Nothing in
//! the workspace currently serializes through serde (the harness writes
//! its JSON by hand), so the markers preserve the source-level API —
//! `use serde::{Serialize, Deserialize}` and `#[derive(Serialize)]` —
//! at zero cost. Swapping the real serde back in is a one-line change in
//! the workspace manifest.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
