//! Offline shim for `serde_derive` (see `shims/README.md`).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal stand-in: `serde::Serialize` / `serde::Deserialize`
//! are marker traits and these derives emit empty impls for them. The
//! derive intentionally supports only the shapes the workspace uses —
//! non-generic structs and enums; for anything with generic parameters it
//! emits nothing (the marker impl can be written by hand if ever needed).

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct`/`enum` keyword, returning
/// `None` for generic types (which this shim does not attempt to handle).
fn type_name(input: TokenStream) -> Option<String> {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    // A `<` right after the name means generics: bail out.
                    if let Some(TokenTree::Punct(p)) = tokens.next() {
                        if p.as_char() == '<' {
                            return None;
                        }
                    }
                    return Some(name.to_string());
                }
                return None;
            }
        }
    }
    None
}

/// Derives the `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl serde::Serialize for {name} {{}}")
            .parse()
            .expect("generated impl parses"),
        None => TokenStream::new(),
    }
}

/// Derives the `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .expect("generated impl parses"),
        None => TokenStream::new(),
    }
}
