//! Facade crate re-exporting the planar-networks workspace (see crates/*).
pub use congest_sim as congest;
pub use planar_embedding as embedding;
pub use planar_graph as graph;
pub use planar_lib as planar;
pub use planar_service as service;
